#ifndef FW_AGG_AGGREGATE_H_
#define FW_AGG_AGGREGATE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "window/coverage.h"

namespace fw {

/// Gray et al.'s aggregate taxonomy (§III-A). The paper's sharing theorems
/// hang off this classification: distributive and algebraic functions have
/// constant-size sub-aggregates (Theorem 5) and can share computation;
/// holistic functions cannot and fall back to the unshared original plan.
enum class AggClass {
  kDistributive,
  kAlgebraic,
  kHolistic,
};

const char* AggClassToString(AggClass cls);

/// Partial-aggregate state. The inline fields are the constant-size fast
/// path every built-in uses (field meaning is per function, e.g. MIN keeps
/// its extremum in v1, AVG keeps sum in v1 and count in n); functions whose
/// state cannot fit three words — quantile and distinct-count sketches —
/// spill into an out-of-line extension buffer that the state owns, copies,
/// and recycles. `n` is the emptiness indicator for every function.
struct AggState {
  double v1 = 0.0;
  double v2 = 0.0;
  uint64_t n = 0;

  AggState() = default;
  AggState(const AggState& other)
      : v1(other.v1), v2(other.v2), n(other.n) {
    CopyExtFrom(other);
  }
  AggState& operator=(const AggState& other) {
    if (this != &other) {
      v1 = other.v1;
      v2 = other.v2;
      n = other.n;
      CopyExtFrom(other);
    }
    return *this;
  }
  AggState(AggState&& other) noexcept
      : v1(other.v1),
        v2(other.v2),
        n(other.n),
        ext_(other.ext_),
        ext_size_(other.ext_size_) {
    other.ext_ = nullptr;
    other.ext_size_ = 0;
  }
  AggState& operator=(AggState&& other) noexcept {
    if (this != &other) {
      delete[] ext_;
      v1 = other.v1;
      v2 = other.v2;
      n = other.n;
      ext_ = other.ext_;
      ext_size_ = other.ext_size_;
      other.ext_ = nullptr;
      other.ext_size_ = 0;
    }
    return *this;
  }
  ~AggState() { delete[] ext_; }

  bool empty() const { return n == 0; }

  const uint8_t* ext() const { return ext_; }
  uint8_t* ext() { return ext_; }
  uint32_t ext_size() const { return ext_size_; }

  /// Returns a writable extension buffer of exactly `size` bytes. The
  /// buffer is zero-filled when (re)allocated; contents are preserved when
  /// the current size already matches (state pools recycle sketch
  /// allocations across window instances).
  uint8_t* EnsureExt(uint32_t size);

  /// Zeroes the inline fields and the extension contents while keeping the
  /// extension allocation, so pooled state buffers reuse sketch storage.
  void Clear() {
    v1 = 0.0;
    v2 = 0.0;
    n = 0;
    if (ext_ != nullptr) std::memset(ext_, 0, ext_size_);
  }

  template <typename T>
  T* ext_as() {
    return reinterpret_cast<T*>(ext_);
  }
  template <typename T>
  const T* ext_as() const {
    return reinterpret_cast<const T*>(ext_);
  }

 private:
  void CopyExtFrom(const AggState& other) {
    if (other.ext_size_ == 0) {
      if (ext_ != nullptr) {
        delete[] ext_;
        ext_ = nullptr;
        ext_size_ = 0;
      }
      return;
    }
    if (ext_size_ != other.ext_size_) {
      delete[] ext_;
      ext_ = new uint8_t[other.ext_size_];
      ext_size_ = other.ext_size_;
    }
    std::memcpy(ext_, other.ext_, ext_size_);
  }

  uint8_t* ext_ = nullptr;
  uint32_t ext_size_ = 0;
};

/// Unbounded state for holistic aggregates (the slices would have to carry
/// all input events — paper §III-A). Used only on the unshared path.
struct HolisticState {
  std::vector<double> values;

  bool empty() const { return values.empty(); }
  void Add(double v) { values.push_back(v); }
};

/// Descriptor of one aggregate function — the open replacement for the
/// original closed enum (the paper's footnote 2 invites exactly this:
/// "future work could expand these two lists"). Everything the rest of the
/// system needs is *declared* here, so the optimizer's sharing decisions
/// (Theorems 5/6), the engine's hot loops, checkpoints, and shard
/// merge/split never special-case individual functions:
///
///  * `agg_class` — Gray taxonomy class; holistic functions are excluded
///    from shared evaluation (Theorem 5) and run on the unshared path via
///    `holistic_finalize`;
///  * `overlap_merge_safe` — Theorem 6 declaration: merging sub-aggregates
///    whose input partitions overlap is still correct (idempotent merges:
///    MIN/MAX/RANGE extrema, HLL register unions). Drives "covered by"
///    coverage semantics; everything else shares under "partitioned by";
///  * `state_bytes` — extension-state size. 0 keeps the inline
///    three-word fast path; non-zero states must be a trivially-copyable
///    blob of exactly this size, which is the serialization contract:
///    checkpoint canonicalization, lineage migration, and shard
///    merge/split persist and restore the raw bytes, so handoff stays
///    bitwise exact (the ROADMAP elasticity invariant);
///  * `accumulate`/`merge`/`finalize` — the data-path operations, resolved
///    once at plan build into per-operator function tables (no per-event
///    dispatch through the registry). `accumulate` folds one raw value and
///    must advance `n`; `merge` folds one sub-aggregate (callers deliver
///    sub-aggregates in non-decreasing window-end order, so order-dependent
///    functions like FIRST/LAST stay correct) and must no-op on an empty
///    `other`; `finalize` is only called on non-empty states.
struct AggregateFunction {
  /// Canonical name (upper-case identifier: [A-Z_][A-Z0-9_]*). The SQL
  /// parser and QueryBuilder resolve any registered name.
  std::string name;
  /// One-line human description (README table, tooling).
  std::string description;
  AggClass agg_class = AggClass::kAlgebraic;
  bool overlap_merge_safe = false;
  /// True when merge results depend on sub-aggregate arrival order
  /// (FIRST/LAST). Plan execution always delivers sub-aggregates in
  /// non-decreasing window-end (time) order, so rewritten plans stay
  /// exact; evaluators that reassociate merges freely — the FlatFAT
  /// lazy-tree combiner — must fall back to in-order combining.
  bool merge_order_sensitive = false;
  uint32_t state_bytes = 0;
  void (*accumulate)(AggState* state, double value) = nullptr;
  /// Optional vectorizable batch fold (the columnar ingestion path,
  /// DESIGN.md §14): must be exactly equivalent — bitwise, not just
  /// mathematically — to calling `accumulate` once per value in array
  /// order, because the engine mixes scalar and batch folds into the same
  /// state. Null is always valid: the engine derives a scalar-loop
  /// fallback at plan build, so every registered function works on the
  /// batch path unchanged. Only meaningful alongside `accumulate`
  /// (holistic functions may not declare it).
  void (*accumulate_batch)(AggState* state, const double* values,
                           size_t count) = nullptr;
  void (*merge)(AggState* state, const AggState& other) = nullptr;
  double (*finalize)(const AggState& state) = nullptr;
  /// Holistic functions only: final scalar from the full value multiset.
  double (*holistic_finalize)(HolisticState* state) = nullptr;

  /// True when the function can be computed from constant-size
  /// sub-aggregates at all (Theorem 5).
  bool SupportsSharing() const { return agg_class != AggClass::kHolistic; }

  /// The coverage semantics the optimizer must use for this function
  /// (paper footnote 2): "covered by" when overlapping merges are declared
  /// safe, "partitioned by" for the other shareable functions. Error for
  /// holistic functions, which fall back to the unshared original plan.
  Result<CoverageSemantics> SharingSemantics() const;

  /// State persistence (the checkpoint text format for one state): inline
  /// fields as IEEE-754 bit patterns plus the raw extension bytes.
  /// DeserializeState validates the extension size against `state_bytes`,
  /// so restoring a sketch state into the wrong function fails cleanly.
  std::string SerializeState(const AggState& state) const;
  Result<AggState> DeserializeState(const std::string& text) const;
};

/// How the rest of the system refers to an aggregate function: a pointer
/// to its registered descriptor. Descriptors live for the process lifetime
/// at stable addresses, so equality is pointer equality.
using AggFn = const AggregateFunction*;

/// Process-wide function registry. Built-ins (and the sketch-backed
/// extensions) are registered on first access; user-defined aggregates
/// join through Register at any point before queries name them.
/// Thread-safe: Register and lookups take an internal mutex (lookups are
/// cold-path — hot loops run on pre-resolved function tables).
class AggregateRegistry {
 public:
  /// The global registry, with all built-ins registered.
  static AggregateRegistry& Global();

  /// Registers a function. Errors on an invalid descriptor (empty or
  /// non-identifier name, missing operations for its class) or a
  /// duplicate name (case-insensitive). On success the descriptor's
  /// address is stable for the registry's lifetime.
  Result<AggFn> Register(AggregateFunction fn);

  /// Case-insensitive lookup; null when unknown.
  AggFn Find(std::string_view name) const;

  /// All registered functions, by canonical name.
  std::vector<AggFn> List() const;

 private:
  AggFn FindLocked(const std::string& canonical) const FW_REQUIRES(mu_);

  mutable Mutex mu_;
  /// Stable addresses (unique_ptr per descriptor); mu_ guards the vector,
  /// never the descriptors — they are immutable once registered, which is
  /// why handing out bare AggFn pointers is safe.
  std::vector<std::unique_ptr<AggregateFunction>> fns_ FW_GUARDED_BY(mu_);
};

/// Case-insensitive lookup in the global registry; null when unknown.
AggFn FindAggregate(std::string_view name);

/// Lookup that CHECK-fails on unknown names — for call sites that name
/// built-ins statically (tests, examples, benchmarks).
AggFn Agg(std::string_view name);

/// Classification and sharing helpers over descriptors (the pre-registry
/// free-function spellings, kept so call sites read the same).
inline AggClass ClassOf(AggFn fn) { return fn->agg_class; }
inline bool SupportsSharing(AggFn fn) { return fn->SupportsSharing(); }
inline bool SupportsOverlappingMerge(AggFn fn) {
  return fn->overlap_merge_safe;
}
inline Result<CoverageSemantics> SemanticsFor(AggFn fn) {
  return fn->SharingSemantics();
}

/// Data-path wrappers. Hot paths resolve the function pointers once per
/// operator instead (exec/operator.cc); these are for cold call sites.
inline void AggAccumulate(AggFn fn, AggState* state, double value) {
  fn->accumulate(state, value);
}
inline void AggMerge(AggFn fn, AggState* state, const AggState& other) {
  fn->merge(state, other);
}
/// Batch fold with the derived scalar fallback: uses the function's
/// `accumulate_batch` kernel when declared, otherwise folds value by
/// value — identical results either way (the accumulate_batch contract).
/// Hot paths resolve both pointers once per operator and branch per run
/// instead (exec/operator.cc).
inline void AggAccumulateBatch(AggFn fn, AggState* state,
                               const double* values, size_t count) {
  if (fn->accumulate_batch != nullptr) {
    fn->accumulate_batch(state, values, count);
    return;
  }
  for (size_t i = 0; i < count; ++i) fn->accumulate(state, values[i]);
}
/// Checked finalize: CHECK-fails on an empty state (the finalize contract;
/// engine hot paths skip empty states and call the raw pointer instead).
double AggFinalize(AggFn fn, const AggState& state);
double HolisticFinalize(AggFn fn, HolisticState* state);

/// Reference (batch) evaluation of any aggregate over raw values, in time
/// order. Used by tests and the result verifier as ground truth. Empty
/// input is an error.
Result<double> AggReference(AggFn fn, const std::vector<double>& values);

/// The checkpoint text encoding of one state — "v1-bits v2-bits n
/// ext_size [hex-payload]" — shared by ExecutorCheckpoint's version-3
/// format and AggregateFunction::SerializeState/DeserializeState so the
/// wire format cannot drift between them. Empty states always encode with
/// ext_size 0 (a pooled buffer may carry a zeroed recycled allocation;
/// the canonical form drops it, so every record round-trips).
void SerializeAggState(const AggState& state, std::ostream& os);
Status DeserializeAggState(std::istream& is, AggState* state);

}  // namespace fw

#endif  // FW_AGG_AGGREGATE_H_
