#ifndef FW_AGG_AGGREGATE_H_
#define FW_AGG_AGGREGATE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "window/coverage.h"

namespace fw {

/// Built-in aggregate functions. The set mirrors the paper's §III-A
/// discussion — MIN/MAX/SUM/COUNT are distributive, AVG/STDEV algebraic,
/// MEDIAN holistic (no constant-size sub-aggregate exists) — plus two
/// extensions in the spirit of footnote 2 ("future work could expand
/// these two lists"): VARIANCE (algebraic, partitioned-by) and RANGE
/// (max - min; algebraic, and overlap-safe like MIN/MAX because its state
/// is a (min, max) pair, so it qualifies for "covered by" sharing).
enum class AggKind {
  kMin,
  kMax,
  kSum,
  kCount,
  kAvg,
  kStdev,
  kVariance,
  kRange,
  kMedian,
};

/// Gray et al.'s aggregate taxonomy (§III-A).
enum class AggClass {
  kDistributive,
  kAlgebraic,
  kHolistic,
};

const char* AggKindToString(AggKind kind);
const char* AggClassToString(AggClass cls);

/// Classifies `kind` per Gray et al.
AggClass ClassOf(AggKind kind);

/// Theorem 6: true when the function stays correct even if the merged
/// sub-aggregates cover overlapping input partitions (MIN and MAX only).
bool SupportsOverlappingMerge(AggKind kind);

/// True when the function can be computed from constant-size sub-aggregates
/// at all (i.e., is distributive or algebraic, Theorem 5).
bool SupportsSharing(AggKind kind);

/// The coverage semantics the optimizer must use for `kind` (paper
/// footnote 2): "covered by" for MIN/MAX, "partitioned by" for the other
/// shareable functions. Error for holistic functions, which fall back to
/// the unshared original plan.
Result<CoverageSemantics> SemanticsFor(AggKind kind);

/// Constant-size partial-aggregate state shared by all non-holistic
/// functions. Field meaning depends on the kind:
///   MIN/MAX        : v1 = current extremum
///   SUM            : v1 = running sum
///   COUNT          : n  = running count
///   AVG            : v1 = sum, n = count
///   STDEV/VARIANCE : v1 = sum, v2 = sum of squares, n = count
///   RANGE          : v1 = min, v2 = max
/// `n` is also the emptiness indicator for every kind.
struct AggState {
  double v1 = 0.0;
  double v2 = 0.0;
  uint64_t n = 0;

  bool empty() const { return n == 0; }
};

/// The identity (empty) state for `kind`.
inline AggState AggIdentity(AggKind kind) {
  AggState s;
  switch (kind) {
    case AggKind::kMin:
      s.v1 = std::numeric_limits<double>::infinity();
      break;
    case AggKind::kMax:
      s.v1 = -std::numeric_limits<double>::infinity();
      break;
    case AggKind::kRange:
      s.v1 = std::numeric_limits<double>::infinity();
      s.v2 = -std::numeric_limits<double>::infinity();
      break;
    default:
      break;
  }
  return s;
}

/// Folds one raw value into `state`.
inline void AggAccumulate(AggKind kind, AggState* state, double value) {
  switch (kind) {
    case AggKind::kMin:
      if (value < state->v1) state->v1 = value;
      break;
    case AggKind::kMax:
      if (value > state->v1) state->v1 = value;
      break;
    case AggKind::kSum:
      state->v1 += value;
      break;
    case AggKind::kCount:
      break;  // Only n advances.
    case AggKind::kAvg:
      state->v1 += value;
      break;
    case AggKind::kStdev:
    case AggKind::kVariance:
      state->v1 += value;
      state->v2 += value * value;
      break;
    case AggKind::kRange:
      if (value < state->v1) state->v1 = value;
      if (value > state->v2) state->v2 = value;
      break;
    case AggKind::kMedian:
      // Holistic functions never take this path; see HolisticState.
      break;
  }
  ++state->n;
}

/// Merges sub-aggregate `other` into `state`. For MIN/MAX this is valid
/// even when the underlying partitions overlap (Theorem 6); for the other
/// kinds the caller must guarantee disjointness (Theorem 5).
inline void AggMerge(AggKind kind, AggState* state, const AggState& other) {
  switch (kind) {
    case AggKind::kMin:
      if (other.v1 < state->v1) state->v1 = other.v1;
      break;
    case AggKind::kMax:
      if (other.v1 > state->v1) state->v1 = other.v1;
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      state->v1 += other.v1;
      break;
    case AggKind::kCount:
      break;
    case AggKind::kStdev:
    case AggKind::kVariance:
      state->v1 += other.v1;
      state->v2 += other.v2;
      break;
    case AggKind::kRange:
      if (other.v1 < state->v1) state->v1 = other.v1;
      if (other.v2 > state->v2) state->v2 = other.v2;
      break;
    case AggKind::kMedian:
      break;
  }
  state->n += other.n;
}

/// Produces the final scalar from a non-empty state.
double AggFinalize(AggKind kind, const AggState& state);

/// Unbounded state for holistic aggregates (the slices would have to carry
/// all input events — paper §III-A). Used only on the unshared path.
struct HolisticState {
  std::vector<double> values;

  bool empty() const { return values.empty(); }
  void Add(double v) { values.push_back(v); }
};

/// Final scalar for a non-empty holistic state (currently MEDIAN; lower
/// median for even sizes).
double HolisticFinalize(AggKind kind, HolisticState* state);

/// Reference (batch) evaluation of any aggregate over raw values. Used by
/// tests and the result verifier as ground truth. Empty input is an error.
Result<double> AggReference(AggKind kind, const std::vector<double>& values);

}  // namespace fw

#endif  // FW_AGG_AGGREGATE_H_
