#ifndef FW_AGG_SKETCH_H_
#define FW_AGG_SKETCH_H_

#include <cstdint>
#include <limits>

namespace fw {

/// Fixed-size log-bucketed quantile sketch (DDSketch-style relative-error
/// histogram) backing the P99 aggregate. The state is a trivially-copyable
/// blob — the AggregateFunction::state_bytes contract — so checkpoints,
/// lineage migration, and shard merge/split carry it bitwise.
///
/// Values bucket by decimal magnitude: bucket i of the positive (negative)
/// array holds v with floor(log10(|v|) / kDecadesPerBin) == i - kOffset,
/// covering ~[1e-10, 1e10] at ~9% relative error; magnitudes outside clamp
/// into the edge buckets, and the exact min/max clamp every estimate, so
/// degenerate inputs stay sane. Bucket counts are integers, which makes
/// Add and Merge exact and order-independent: any partitioning of the
/// input folds to the identical state, byte for byte — the property that
/// lets P99 share sub-aggregates under "partitioned by" and survive
/// resize/replan handoff exactly.
struct QuantileSketch {
  static constexpr int kBins = 256;
  static constexpr int kOffset = kBins / 2;
  /// Each bin spans this many decades; kBins bins cover 10^±(kOffset*Δ).
  static constexpr double kDecadesPerBin = 20.0 / kBins;

  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint64_t zero = 0;          // |v| too small to bucket (incl. 0).
  uint64_t neg[kBins] = {};   // Indexed by |v| magnitude bucket.
  uint64_t pos[kBins] = {};

  void Add(double v);
  void Merge(const QuantileSketch& other);

  /// The q-quantile estimate of the `n` folded values (rank ceil(q*n),
  /// lower bucket midpoint in log space, clamped to [min, max]).
  double Quantile(double q, uint64_t n) const;
};

/// Small HyperLogLog sketch (256 registers, ~6.5% standard error) backing
/// DISTINCT_COUNT. Register-wise max is an idempotent union: merging
/// sub-aggregates whose inputs overlap cannot change the estimate, so the
/// function declares overlap_merge_safe and the optimizer shares it under
/// "covered by" — the same semantics as MIN/MAX (Theorem 6). Trivially
/// copyable, like QuantileSketch, for bitwise state handoff.
struct HllSketch {
  static constexpr uint32_t kRegisters = 256;  // Precision p = 8.

  uint8_t regs[kRegisters] = {};

  void Add(double v);
  void Merge(const HllSketch& other);
  double Estimate() const;
};

}  // namespace fw

#endif  // FW_AGG_SKETCH_H_
