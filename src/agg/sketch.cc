#include "agg/sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace fw {

namespace {

// Magnitude bucket for |v| > 0, clamped into [0, kBins). The range check
// happens in floating point *before* the int cast: casting an
// out-of-range double (log10 of an infinity, or a huge magnitude) to int
// is undefined behavior.
int BucketFor(double magnitude) {
  const double decades = std::log10(magnitude);
  const double raw = QuantileSketch::kOffset +
                     std::floor(decades / QuantileSketch::kDecadesPerBin);
  if (!(raw > 0.0)) return 0;
  if (raw >= QuantileSketch::kBins - 1) return QuantileSketch::kBins - 1;
  return static_cast<int>(raw);
}

// Log-space midpoint of bucket i, always positive.
double BucketMid(int i) {
  const double decades =
      (i - QuantileSketch::kOffset + 0.5) * QuantileSketch::kDecadesPerBin;
  return std::pow(10.0, decades);
}

// SplitMix64: cheap, well-distributed 64-bit mix for hashing values.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void QuantileSketch::Add(double v) {
  if (std::isnan(v)) {
    // Deterministic placement for a value with no order: the zero bucket.
    // min/max comparisons ignore NaN, so estimates stay clamped to the
    // ordered values.
    ++zero;
    return;
  }
  min = std::min(min, v);
  max = std::max(max, v);
  // Magnitudes below the smallest bucket boundary (incl. exact 0) land in
  // the zero bucket; the min/max clamp keeps their estimate honest.
  // Infinities clamp into the edge buckets inside BucketFor.
  const double magnitude = std::fabs(v);
  constexpr double kSmallest = 1e-10;
  if (magnitude < kSmallest) {
    ++zero;
  } else if (v < 0.0) {
    ++neg[BucketFor(magnitude)];
  } else {
    ++pos[BucketFor(magnitude)];
  }
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  zero += other.zero;
  for (int i = 0; i < kBins; ++i) {
    neg[i] += other.neg[i];
    pos[i] += other.pos[i];
  }
}

double QuantileSketch::Quantile(double q, uint64_t n) const {
  if (n == 0) return 0.0;
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(
                                q * static_cast<double>(n))));
  const auto clamp = [&](double estimate) {
    return std::min(max, std::max(min, estimate));
  };
  uint64_t cumulative = 0;
  // Ascending value order: most-negative magnitudes first, then the zero
  // bucket, then positives.
  for (int i = kBins - 1; i >= 0; --i) {
    cumulative += neg[i];
    if (cumulative >= rank) return clamp(-BucketMid(i));
  }
  cumulative += zero;
  if (cumulative >= rank) return clamp(0.0);
  for (int i = 0; i < kBins; ++i) {
    cumulative += pos[i];
    if (cumulative >= rank) return clamp(BucketMid(i));
  }
  return max;  // rank beyond the folded count (all bins exhausted).
}

void HllSketch::Add(double v) {
  // Canonicalize -0.0 so it hashes like 0.0 (they compare equal).
  const double canonical = v == 0.0 ? 0.0 : v;
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(canonical));
  std::memcpy(&bits, &canonical, sizeof(bits));
  const uint64_t h = Mix64(bits);
  const uint32_t index = static_cast<uint32_t>(h & (kRegisters - 1));
  const uint64_t rest = h >> 8;  // 56 usable bits.
  const uint8_t rank = static_cast<uint8_t>(
      rest == 0 ? 57 : std::countl_zero(rest) - 8 + 1);
  regs[index] = std::max(regs[index], rank);
}

void HllSketch::Merge(const HllSketch& other) {
  for (uint32_t i = 0; i < kRegisters; ++i) {
    regs[i] = std::max(regs[i], other.regs[i]);
  }
}

double HllSketch::Estimate() const {
  const double m = static_cast<double>(kRegisters);
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double inverse_sum = 0.0;
  uint32_t zero_registers = 0;
  for (uint32_t i = 0; i < kRegisters; ++i) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(regs[i]));
    if (regs[i] == 0) ++zero_registers;
  }
  const double raw = alpha * m * m / inverse_sum;
  // Small-range correction: linear counting while registers are sparse.
  if (raw <= 2.5 * m && zero_registers > 0) {
    return m * std::log(m / static_cast<double>(zero_registers));
  }
  return raw;
}

}  // namespace fw
