#include "session/session.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "durability/manager.h"
#include "exec/checkpoint.h"
#include "exec/migrate.h"
#include "exec/reorder.h"
#include "plan/printer.h"
#include "query/parser.h"
#include "runtime/partition.h"

namespace fw {

namespace {

/// The one place the unified ingestion error contract is worded
/// (session.h, Push): every rejection from Push, PushBatch, or
/// PushColumns names the first rejected event's index within the call
/// and its timestamp, with the cause appended. Events before the index
/// were applied.
Status IngestStopped(size_t index, TimeT timestamp, const Status& cause) {
  return Status(cause.code(),
                "ingest stopped at event " + std::to_string(index) +
                    " (timestamp " + std::to_string(timestamp) +
                    "): " + cause.message());
}

/// The recovery-side analogue of IngestStopped — the same stop-position
/// contract, worded in changelog coordinates: the segment (by base
/// sequence) and record index where replay had to stop, with the cause
/// appended. Everything before that record was applied.
Status RecoveryStopped(uint64_t segment_base, uint64_t record_index,
                       const Status& cause) {
  return Status(cause.code(),
                "recovery stopped at segment " +
                    std::to_string(segment_base) + ", record " +
                    std::to_string(record_index) + ": " + cause.message());
}

/// AutoResizeOptions kept lenient legacy defaults (min_shards or
/// scale_down_checks of 0 were historically tolerated); ResizePolicy
/// validates strictly, so sanitize at the boundary instead of aborting
/// sessions that never enable the monitor.
ResizePolicy::Options PolicyOptionsFrom(
    const StreamSession::AutoResizeOptions& options) {
  ResizePolicy::Options policy;
  policy.min_shards = std::max(options.min_shards, 1u);
  policy.max_shards = std::max(options.max_shards, policy.min_shards);
  policy.scale_up_occupancy = options.scale_up_occupancy;
  policy.scale_down_occupancy = options.scale_down_occupancy;
  policy.scale_down_checks =
      options.scale_down_checks > 0
          ? static_cast<uint32_t>(options.scale_down_checks)
          : 1u;
  policy.target_rate_per_shard = std::max(options.target_rate_per_shard, 0.0);
  policy.handoff_p99_budget_ns = options.handoff_p99_budget_ns;
  return policy;
}

/// RateEstimator validates alpha strictly; a session with adaptive
/// features disabled must not abort on an ignored knob (the enabled case
/// is checked loudly in the constructor body).
double SanitizedRateAlpha(double alpha) {
  return alpha > 0.0 && alpha <= 1.0 ? alpha : 0.3;
}

/// Largest window range in the plan: a crossover's old pipeline owns
/// every instance starting before the cutover C, and the last of those
/// ends strictly before C + max_range — so it can retire once the
/// release watermark reaches C - 1 + max_range.
TimeT MaxRange(const QueryPlan& plan) {
  TimeT max_range = 0;
  for (const PlanOperator& op : plan.operators()) {
    max_range = std::max(max_range, op.window.range());
  }
  return max_range;
}

/// Copies rows [begin, end) of a columnar batch — the cold paths
/// (mid-batch rejection, monitor-sample segmentation) re-slice so the
/// executor still sees columnar hand-offs.
EventColumns SliceColumns(const EventColumns& columns, size_t begin,
                          size_t end) {
  EventColumns out;
  out.Reserve(end - begin);
  out.timestamps.assign(
      columns.timestamps.begin() + static_cast<ptrdiff_t>(begin),
      columns.timestamps.begin() + static_cast<ptrdiff_t>(end));
  out.keys.assign(columns.keys.begin() + static_cast<ptrdiff_t>(begin),
                  columns.keys.begin() + static_cast<ptrdiff_t>(end));
  out.values.assign(columns.values.begin() + static_cast<ptrdiff_t>(begin),
                    columns.values.begin() + static_cast<ptrdiff_t>(end));
  return out;
}

}  // namespace

void StreamSession::CallbackSink::OnResult(const WindowResult& result) {
  ++owner_->results_delivered;
  if (owner_->callback) owner_->callback(result);
}

/// See the declaration in session.h: the era gate every pipeline routes
/// through. Results pass iff their window start lies in
/// [min_start, max_start) — open on both ends until a crossover narrows
/// the old pipeline to starts < C and the new one to starts >= C.
class StreamSession::StartGateSink : public ResultSink {
 public:
  explicit StartGateSink(ResultSink* next) : next_(next) {}

  void OnResult(const WindowResult& result) override {
    if (result.start >= min_start_ && result.start < max_start_) {
      next_->OnResult(result);
    }
  }

  void set_min_start(TimeT min_start) { min_start_ = min_start; }
  void set_max_start(TimeT max_start) { max_start_ = max_start; }

 private:
  ResultSink* next_;
  TimeT min_start_ = std::numeric_limits<TimeT>::min();
  TimeT max_start_ = std::numeric_limits<TimeT>::max();
};

/// The outgoing pipeline of a structural drift replan (see session.h).
/// Members declare in dependency order — executor references gate, gate
/// references router, router references the shared plan's subscription
/// table — so the implicit reverse-order destruction is safe.
struct StreamSession::DriftCrossover {
  std::unique_ptr<MultiQueryOptimizer::SharedPlan> shared;
  std::unique_ptr<RoutingSink> router;
  std::unique_ptr<StartGateSink> gate;
  std::unique_ptr<ShardedExecutor> executor;
  std::vector<std::string> lineages;
  /// End of the last window instance owned by the old pipeline (instance
  /// starts < cutover): retire once the release watermark reaches it.
  TimeT retire_at = 0;
};

StreamSession::StreamSession() : StreamSession(Options{}) {}

StreamSession::StreamSession(const Options& options)
    : options_(options),
      watermark_lag_hist_(metrics_.GetHistogram("session.watermark_lag")),
      push_batch_size_hist_(
          metrics_.GetHistogram("session.push_batch_size")),
      events_pushed_counter_(metrics_.GetCounter("session.events_pushed")),
      events_dropped_counter_(metrics_.GetCounter("session.events_dropped")),
      replans_counter_(metrics_.GetCounter("session.replans")),
      resizes_counter_(metrics_.GetCounter("session.resizes")),
      ring_occupancy_gauge_(metrics_.GetGauge("session.ring_occupancy")),
      live_queries_gauge_(metrics_.GetGauge("session.live_queries")),
      num_shards_gauge_(metrics_.GetGauge("session.num_shards")),
      reorder_buffered_gauge_(metrics_.GetGauge("session.reorder_buffered")),
      accumulate_ops_gauge_(metrics_.GetGauge("engine.accumulate_ops_total")),
      closed_total_gauge_(metrics_.GetGauge("engine.closed_instances_total")),
      finalized_total_gauge_(
          metrics_.GetGauge("engine.finalized_results_total")),
      drift_replans_counter_(metrics_.GetCounter("session.drift_replans")),
      observed_eta_gauge_(metrics_.GetGauge("session.observed_eta")),
      throughput_eps_gauge_(metrics_.GetGauge("session.throughput_eps")),
      handoff_hist_(metrics_.GetHistogram("executor.batch_handoff_ns")),
      resize_policy_(PolicyOptionsFrom(options.auto_resize)),
      rate_(SanitizedRateAlpha(options.adaptive.rate_alpha)) {
  session_role_.AssertHeld();  // Constructing thread is the caller thread.
  FW_CHECK_GT(options.num_keys, 0u);
  FW_CHECK_GE(options.max_delay, 0);
  if (options_.adaptive.enabled) {
    FW_CHECK_GT(options_.adaptive.rate_alpha, 0.0);
    FW_CHECK_LE(options_.adaptive.rate_alpha, 1.0);
    FW_CHECK_GT(options_.adaptive.check_interval, 0u);
    FW_CHECK_GE(options_.adaptive.reoptimize_ratio, 1.0);
  }
  planned_eta_ = options_.optimizer.eta;
  if (options_.max_delay > 0 &&
      options_.late_policy == LatePolicy::kSideOutput &&
      options_.late_callback) {
    late_sink_ = std::make_unique<ConsumerFn<LateEventCallback>>(
        options_.late_callback);
  }
  if (options_.durability.enabled) {
    Result<std::unique_ptr<durability::DurabilityManager>> manager =
        durability::DurabilityManager::CreateFresh(options_.durability,
                                                   &metrics_);
    if (manager.ok()) {
      durability_ = std::move(*manager);
    } else {
      // Constructors cannot return Status; latch the failure and surface
      // it from the first ingest or churn call (fail-stop, never a
      // session that silently runs without its log).
      durability_error_ = manager.status();
    }
  }
}

StreamSession::~StreamSession() {
  session_role_.AssertHeld();  // Destroying thread is the caller thread.
  // Each pipeline's executor references its gate, the gate its router,
  // the router the queries' sinks; tear down in dependency order, the
  // crossover's outgoing pipeline first.
  cross_.reset();
  executor_.reset();
  gate_.reset();
  router_.reset();
}

Status StreamSession::CheckMutable() const {
  if (finished_) {
    return Status::InvalidArgument("session is finished");
  }
  return Status::OK();
}

Result<QueryId> StreamSession::AddQuery(const StreamQuery& query,
                                        ResultCallback callback) {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  FW_RETURN_IF_ERROR(CheckMutable());
  if (options_.durability.enabled) FW_RETURN_IF_ERROR(CheckDurable());
  if (query.windows.empty()) {
    return Status::InvalidArgument("query without windows");
  }
  if (query.agg == nullptr) {
    return Status::InvalidArgument("query without an aggregate function");
  }
  if (!SupportsSharing(query.agg)) {
    return Status::Unimplemented(
        query.agg->name +
        " is holistic and cannot join a shared session; execute "
        "QueryPlan::Original directly instead");
  }
  // Grouping is an execution property of the whole session (every event
  // carries one key drawn from [0, num_keys)), so a global aggregate in a
  // keyed session would silently produce per-key results.
  if (!query.per_key && options_.num_keys > 1) {
    return Status::InvalidArgument(
        "global (non-PerKey) query in a session with num_keys " +
        std::to_string(options_.num_keys) +
        "; declare PerKey or use a num_keys=1 session");
  }
  if (!queries_.empty()) {
    const StreamQuery& first = queries_.front()->query;
    if (query.source != first.source) {
      return Status::InvalidArgument(
          "session reads stream '" + first.source + "', query reads '" +
          query.source + "'");
    }
    if (query.agg != first.agg) {
      return Status::InvalidArgument(
          "session aggregates " + first.agg->name + ", query aggregates " +
          query.agg->name);
    }
    if (query.per_key != first.per_key ||
        query.key_column != first.key_column) {
      return Status::InvalidArgument(
          "session groups by '" +
          (first.per_key ? first.key_column : std::string("<none>")) +
          "', query groups by '" +
          (query.per_key ? query.key_column : std::string("<none>")) + "'");
    }
  }

  auto live = std::make_unique<LiveQuery>();
  live->id = next_id_;
  live->query = query;
  live->callback = std::move(callback);

  std::vector<LiveQuery*> candidate;
  candidate.reserve(queries_.size() + 1);
  for (const auto& q : queries_) candidate.push_back(q.get());
  candidate.push_back(live.get());
  FW_RETURN_IF_ERROR(Rebuild(candidate));

  ++next_id_;
  queries_.push_back(std::move(live));
  if (durability_) {
    // Logged after the commit: a failed Rebuild must leave the changelog
    // as untouched as the session. An append failure here latches — the
    // query is live in memory but not durable, so further ingest (which
    // would widen the divergence) is refused.
    Status logged = durability_->AppendAddQuery(queries_.back()->id, query);
    if (!logged.ok()) {
      durability_error_ = logged;
      return logged;
    }
    MaybeSnapshot();
  }
  return queries_.back()->id;
}

Result<QueryId> StreamSession::AddQuery(std::string_view sql,
                                        ResultCallback callback) {
  Result<StreamQuery> query = ParseQuery(sql);
  if (!query.ok()) return query.status();
  return AddQuery(*query, std::move(callback));
}

Result<QueryId> StreamSession::AddQuery(const QueryBuilder& builder,
                                        ResultCallback callback) {
  Result<StreamQuery> query = builder.Build();
  if (!query.ok()) return query.status();
  return AddQuery(*query, std::move(callback));
}

size_t StreamSession::FindQuery(QueryId id) const {
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i]->id == id) return i;
  }
  return queries_.size();
}

Status StreamSession::RemoveQuery(QueryId id) {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  FW_RETURN_IF_ERROR(CheckMutable());
  if (options_.durability.enabled) FW_RETURN_IF_ERROR(CheckDurable());
  size_t index = FindQuery(id);
  if (index == queries_.size()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  std::vector<LiveQuery*> remaining;
  remaining.reserve(queries_.size() - 1);
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (i != index) remaining.push_back(queries_[i].get());
  }
  FW_RETURN_IF_ERROR(Rebuild(remaining));
  queries_.erase(queries_.begin() + static_cast<ptrdiff_t>(index));
  if (durability_) {
    Status logged = durability_->AppendRemoveQuery(id);
    if (!logged.ok()) {
      durability_error_ = logged;
      return logged;
    }
    MaybeSnapshot();
  }
  return Status::OK();
}

Status StreamSession::Rebuild(const std::vector<LiveQuery*>& live) {
  MonotonicTimer timer;

  if (live.empty()) {
    // Session went idle: retire the whole pipeline (in-flight windows are
    // dropped — nobody subscribes to them anymore). Results already
    // emitted but still buffered in the shards belong to windows that
    // closed before the removal, so deliver them first, exactly like the
    // single-threaded path did during Push. During a crossover both
    // pipelines only *drain* — the idle path never closes windows, so
    // flush-closing the gated new executor here would emit results a
    // static-plan session never emits, into callbacks being removed.
    if (executor_) {
      if (cross_) cross_->executor->Drain();
      executor_->Drain();
      if (cross_) {
        // The old pipeline is the oracle-visible one: it saw the whole
        // stream with the session's original clock, so its lates, peak,
        // and watermark retire as the session's. The new pipeline's
        // reorder stage is a muted warm-up duplicate — only its real
        // work (ops) and close tallies bank.
        retired_ops_ += cross_->executor->TotalAccumulateOps();
        retired_late_ += cross_->executor->late_events();
        retired_reorder_peak_ = std::max(
            retired_reorder_peak_, cross_->executor->reorder_buffer_peak());
        retired_watermark_ = cross_->executor->current_watermark();
        for (uint64_t c : cross_->executor->PerOperatorCloses()) {
          retired_closes_total_ += c;
        }
        for (uint64_t f : cross_->executor->PerOperatorFinalizes()) {
          retired_finalizes_total_ += f;
        }
        retired_ops_ += executor_->TotalAccumulateOps();
        for (uint64_t c : executor_->PerOperatorCloses()) {
          retired_closes_total_ += c;
        }
        for (uint64_t f : executor_->PerOperatorFinalizes()) {
          retired_finalizes_total_ += f;
        }
      } else {
        retired_ops_ += executor_->TotalAccumulateOps();
        // The reorder stage retires with the pipeline: its buffered
        // events belonged to windows nobody subscribes to anymore, its
        // counters move into the session tallies, and the event-time
        // clock restarts on revival.
        retired_late_ += executor_->late_events();
        retired_reorder_peak_ = std::max(retired_reorder_peak_,
                                         executor_->reorder_buffer_peak());
        retired_watermark_ = executor_->current_watermark();
        for (uint64_t c : executor_->PerOperatorCloses()) {
          retired_closes_total_ += c;
        }
        for (uint64_t f : executor_->PerOperatorFinalizes()) {
          retired_finalizes_total_ += f;
        }
      }
      metrics_.RecordTrace(telemetry::TraceKind::kIdleRetire);
    }
    cross_.reset();
    executor_.reset();
    gate_.reset();
    router_.reset();
    shared_.reset();
    lineages_.clear();
    // A retired pipeline has no hand-off rings: the occupancy gauge must
    // read 0, not the last live sample (the ring_occupancy staleness
    // contract, pinned by the stats-lifecycle regression tests).
    ring_occupancy_gauge_->Set(0.0);
    ++replans_;
    replans_counter_->Increment(0);
    last_migrated_ = 0;
    last_cold_ = 0;
    last_replan_seconds_ = timer.ElapsedSeconds();
    return Status::OK();
  }

  std::vector<StreamQuery> queries;
  std::vector<ResultSink*> sinks;
  queries.reserve(live.size());
  sinks.reserve(live.size());
  for (LiveQuery* q : live) {
    queries.push_back(q->query);
    sinks.push_back(&q->sink);
  }

  Result<MultiQueryOptimizer::SharedPlan> shared =
      MultiQueryOptimizer::Reoptimize(queries, options_.optimizer,
                                      options_.track_baseline);
  if (!shared.ok()) return shared.status();

  // A churn replan folds an in-flight crossover back into one pipeline
  // first: the restored (old) pipeline saw the whole stream, so the
  // checkpoint below migrates exactly a static pipeline's state. Ordered
  // after the optimizer run — an optimizer error must leave the session
  // (including the crossover) untouched.
  if (cross_) FW_RETURN_IF_ERROR(CancelCrossover());

  // Materialize the owned plan first: the executor keeps a pointer to it
  // for its whole lifetime (Resize rebuilds engines over it), so it must
  // live at its final address before any executor is constructed.
  auto shared_owned = std::make_unique<MultiQueryOptimizer::SharedPlan>(
      std::move(*shared));

  // Carry surviving operator state across the swap (see class comment for
  // the migration semantics). ShardedExecutor::Checkpoint drains buffered
  // results through the old router and merges the shards into the global
  // view, so the lineage migration below is shard-count agnostic.
  std::vector<std::string> lineages = OperatorLineages(shared_owned->plan);
  CheckpointMigration migration;
  if (executor_) {
    Result<ExecutorCheckpoint> checkpoint = executor_->Checkpoint();
    if (!checkpoint.ok()) return checkpoint.status();
    migration = MigrateCheckpoint(*checkpoint, lineages_, lineages);
  } else {
    migration.cold = static_cast<int>(shared_owned->plan.num_operators());
  }

  auto router = std::make_unique<RoutingSink>(*shared_owned, queries,
                                              std::move(sinks));
  auto gate = std::make_unique<StartGateSink>(router.get());
  ShardedExecutor::Options exec_options;
  exec_options.num_keys = options_.num_keys;
  exec_options.num_shards = options_.num_shards;
  exec_options.max_delay = options_.max_delay;
  exec_options.late_sink = late_sink_.get();
  exec_options.metrics = &metrics_;
  auto executor = std::make_unique<ShardedExecutor>(shared_owned->plan,
                                                    exec_options,
                                                    gate.get());
  if (executor_) {
    FW_RETURN_IF_ERROR(executor->Restore(migration.checkpoint));
    retired_ops_ += executor_->TotalAccumulateOps() - migration.carried_ops;
    // Close/finalize counts never migrate (they are not in the
    // checkpoint): the whole outgoing pipeline's tallies retire here,
    // and the new engines restart at zero.
    for (uint64_t c : executor_->PerOperatorCloses()) {
      retired_closes_total_ += c;
    }
    for (uint64_t f : executor_->PerOperatorFinalizes()) {
      retired_finalizes_total_ += f;
    }
  }

  // Commit; destroy the old executor before the gate and router it
  // references.
  executor_ = std::move(executor);
  gate_ = std::move(gate);
  router_ = std::move(router);
  shared_ = std::move(shared_owned);
  lineages_ = std::move(lineages);
  ++replans_;
  replans_counter_->Increment(0);
  last_migrated_ = migration.migrated;
  last_cold_ = migration.cold;
  last_replan_seconds_ = timer.ElapsedSeconds();
  metrics_.RecordTrace(telemetry::TraceKind::kReplan, timer.ElapsedNanos(),
                       migration.migrated, migration.cold);
  return Status::OK();
}

Status StreamSession::Resize(uint32_t new_num_shards) {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  FW_RETURN_IF_ERROR(CheckMutable());
  if (new_num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  MonotonicTimer timer;
  const uint32_t width_before =
      executor_ ? executor_->num_shards()
                : EffectiveShards(options_.num_shards, options_.num_keys);
  if (executor_) {
    // In-place exact handoff (runtime/ShardedExecutor::Resize): drains,
    // merges shard checkpoints, rebuilds at the new width, re-splits.
    // Cumulative counters ride inside the checkpoint, so nothing is
    // retired here. During a crossover only the live pipeline re-scales;
    // the outgoing one keeps its width for its bounded remaining life.
    FW_RETURN_IF_ERROR(executor_->Resize(new_num_shards));
  }
  options_.num_shards = new_num_shards;  // Future replans keep the width.
  ++resize_count_;
  resizes_counter_->Increment(0);
  last_resize_ns_ = timer.ElapsedNanos();
  metrics_.RecordTrace(telemetry::TraceKind::kResize, last_resize_ns_,
                       width_before,
                       executor_ ? executor_->num_shards()
                                 : EffectiveShards(options_.num_shards,
                                                   options_.num_keys));
  resize_policy_.OnApplied();
  return Status::OK();
}

void StreamSession::AutoResizeCheck(uint64_t events_at_sample,
                                    TimeT wm_at_sample) {
  const AutoResizeOptions& policy = options_.auto_resize;
  // The throughput signal shares the drift detector's rate estimator;
  // whichever monitor samples first feeds it the next delta.
  if (policy.target_rate_per_shard > 0.0) {
    ObserveRate(events_at_sample, wm_at_sample);
  }
  ResizeSignal signal;
  signal.current_shards = executor_->num_shards();
  signal.ring_occupancy = executor_->RingOccupancy();
  ring_occupancy_gauge_->Set(signal.ring_occupancy);
  if (policy.target_rate_per_shard > 0.0 && rate_.has_observations()) {
    signal.rate_valid = true;
    signal.observed_rate = rate_.rate();
  }
  if (policy.handoff_p99_budget_ns > 0 && telemetry::kEnabled) {
    // Per-interval delta, not lifetime percentiles: an old congestion
    // spike must not block scale-downs forever.
    telemetry::HistogramSnapshot now = handoff_hist_->Snapshot();
    signal.handoff_p99_ns = static_cast<uint64_t>(
        telemetry::Delta(now, last_handoff_snap_).Percentile(0.99));
    last_handoff_snap_ = now;
  }

  const uint32_t current = signal.current_shards;
  const uint32_t target = resize_policy_.Decide(signal);
  if (target == current) return;
  // Every proposal — scale-up, scale-down, or out-of-bounds clamp —
  // passes the same guards: a resize that cannot change the effective
  // width (keyless plan, or already one shard per key) would churn
  // executors for nothing, and a scale-up the cost model prices at gain
  // <= 1 cannot pay for its swap. Vetoes report back to the policy so
  // the hysteresis streak resets instead of re-firing a hopeless
  // proposal every sample.
  if (EffectiveShards(target, options_.num_keys) == current ||
      (target > current && shared_ &&
       shared_->PredictedResizeGain(current, target, options_.num_keys) <=
           1.0)) {
    resize_policy_.OnVetoed();
    return;
  }
  // Best-effort: a failed resize (cannot happen for the plans a session
  // admits — they always checkpoint) leaves the current width standing,
  // to retry after a fresh streak.
  Status status = Resize(target);
  if (!status.ok()) resize_policy_.OnVetoed();
}

void StreamSession::ObserveRate(uint64_t events_at_sample,
                                TimeT wm_at_sample) {
  if (!rate_seeded_) {
    // First sample pins the origin; the estimator needs a delta.
    rate_seeded_ = true;
    rate_last_events_ = events_at_sample;
    rate_last_wm_ = wm_at_sample;
    rate_last_ns_ = telemetry::NowNanosIfEnabled();
    return;
  }
  const uint64_t events = events_at_sample - rate_last_events_;
  const TimeT span = wm_at_sample - rate_last_wm_;
  if (events == 0 && span <= 0) return;  // Same stream position.
  rate_.ObserveBatch(events, span);
  rate_last_events_ = events_at_sample;
  rate_last_wm_ = wm_at_sample;
  if (rate_.has_observations()) {
    observed_eta_gauge_->Set(rate_.rate());
  }
  // Wall-clock events/sec is export-only (decisions use the event-time
  // rate above, which replays deterministically).
  const uint64_t now_ns = telemetry::NowNanosIfEnabled();
  if (now_ns > rate_last_ns_ && rate_last_ns_ > 0 && events > 0) {
    throughput_eps_gauge_->Set(static_cast<double>(events) * 1e9 /
                               static_cast<double>(now_ns - rate_last_ns_));
  }
  rate_last_ns_ = now_ns;
}

void StreamSession::DriftCheck(uint64_t events_at_sample,
                               TimeT wm_at_sample) {
  ObserveRate(events_at_sample, wm_at_sample);
  if (cross_) return;  // One crossover at a time.
  if (!rate_.has_observations()) return;
  const double eta_hat = rate_.rate();
  if (eta_hat <= 0.0 || planned_eta_ <= 0.0) return;
  const double ratio = eta_hat > planned_eta_ ? eta_hat / planned_eta_
                                              : planned_eta_ / eta_hat;
  if (ratio < options_.adaptive.reoptimize_ratio) return;
  if (events_at_sample - last_drift_replan_events_ <
      options_.adaptive.min_events_between_replans) {
    return;
  }
  // The cooldown restarts even when the replan below fails or recosts in
  // place: either way the detector observed this drift and acted.
  last_drift_replan_events_ = events_at_sample;
  StartDriftReplan(eta_hat, wm_at_sample);
}

void StreamSession::StartDriftReplan(double eta_hat, TimeT wm_at_sample) {
  MonotonicTimer timer;
  std::vector<StreamQuery> queries;
  std::vector<ResultSink*> sinks;
  queries.reserve(queries_.size());
  sinks.reserve(queries_.size());
  for (const auto& q : queries_) {
    queries.push_back(q->query);
    sinks.push_back(&q->sink);
  }
  OptimizerOptions observed = options_.optimizer;
  observed.eta = eta_hat;
  Result<MultiQueryOptimizer::SharedPlan> shared =
      MultiQueryOptimizer::Reoptimize(queries, observed,
                                      options_.track_baseline);
  if (!shared.ok()) return;  // Keep the current plan; retry on later drift.

  // From here on the session is costed at the observed rate: later churn
  // replans and drift checks both start from η̂.
  options_.optimizer.eta = eta_hat;
  planned_eta_ = eta_hat;
  ++drift_replans_;
  drift_replans_counter_->Increment(0);

  auto fresh = std::make_unique<MultiQueryOptimizer::SharedPlan>(
      std::move(*shared));
  if (PlansStructurallyEqual(shared_->plan, fresh->plan)) {
    // Same operators, new pricing: adopt the observed-η costing in place.
    // No executor swap, no state movement — results are trivially
    // unchanged.
    shared_->shared_cost = fresh->shared_cost;
    shared_->independent_cost = fresh->independent_cost;
    shared_->original_cost = fresh->original_cost;
    metrics_.RecordTrace(telemetry::TraceKind::kDriftReplan,
                         timer.ElapsedNanos(), 0, 0);
    return;
  }

  // Structural switch (factor windows evicted or reinstated): bounded
  // dual-pipeline crossover. Cutover C is the first timestamp the
  // current watermark has not reached; instances starting before C stay
  // with the old pipeline (which already holds their partials), the new
  // pipeline owns starts >= C — its slices tile from instance starts, so
  // gating by start keeps its output exact even though it never saw
  // pre-cutover events. retire_at computes on the *old* plan: its last
  // owned instance starts at C - 1 at the latest.
  const TimeT cutover = wm_at_sample + 1;
  const TimeT retire_at = cutover - 1 + MaxRange(shared_->plan);
  auto router = std::make_unique<RoutingSink>(*fresh, queries,
                                              std::move(sinks));
  auto gate = std::make_unique<StartGateSink>(router.get());
  gate->set_min_start(cutover);
  ShardedExecutor::Options exec_options;
  exec_options.num_keys = options_.num_keys;
  exec_options.num_shards = options_.num_shards;
  exec_options.max_delay = options_.max_delay;
  // The new pipeline's late set is a subset of the old's (a younger
  // reorder clock only accepts more): muted so late counts and side
  // outputs are not duplicated while both run.
  exec_options.late_sink = nullptr;
  exec_options.metrics = &metrics_;
  auto executor = std::make_unique<ShardedExecutor>(fresh->plan,
                                                    exec_options,
                                                    gate.get());

  auto cross = std::make_unique<DriftCrossover>();
  cross->retire_at = retire_at;
  gate_->set_max_start(cutover);  // Old pipeline: pre-cutover era only.
  cross->shared = std::move(shared_);
  cross->router = std::move(router_);
  cross->gate = std::move(gate_);
  cross->executor = std::move(executor_);
  cross->lineages = std::move(lineages_);

  // The new pipeline starts cold by construction — every instance it may
  // emit opens at or after the cutover, so there is no state worth
  // migrating (and lineages changed structurally anyway).
  executor_ = std::move(executor);
  gate_ = std::move(gate);
  router_ = std::move(router);
  shared_ = std::move(fresh);
  lineages_ = OperatorLineages(shared_->plan);
  cross_ = std::move(cross);
  metrics_.RecordTrace(telemetry::TraceKind::kDriftReplan,
                       timer.ElapsedNanos(), 1, 0);
}

void StreamSession::MaybeCompleteCrossover(TimeT wm_now) {
  if (!cross_) return;
  // Release watermark: the newest timestamp whose windows can still
  // change is wm_now - max_delay (late arrivals land behind it). Every
  // old-pipeline instance ends at or before retire_at, so once the
  // release watermark reaches it they have all closed with final
  // contents. Completing *later* than this point is always
  // output-identical — which is why the columnar path may check at
  // segment granularity instead of per event.
  const TimeT release =
      options_.max_delay == 0 ? wm_now : wm_now - options_.max_delay;
  if (release >= cross_->retire_at) CompleteCrossover();
}

void StreamSession::CompleteCrossover() {
  DriftCrossover& cross = *cross_;
  // Joins workers and delivers anything still buffered. All pre-cutover
  // instances have closed canonically by now (their ends precede the
  // release watermark), and post-cutover flushes are suppressed by the
  // old gate — the new pipeline owns and already emitted that era.
  cross.executor->Finish();
  retired_ops_ += cross.executor->TotalAccumulateOps();
  // The session's late tally must read as one pipeline's: the live
  // executor's counter includes warm-up lates the old pipeline also
  // counted, so bank only the old pipeline's surplus over it. (The new
  // clock starts younger, so its late set — and count — is a subset.)
  const uint64_t old_late = cross.executor->late_events();
  const uint64_t new_late = executor_->late_events();
  retired_late_ += old_late > new_late ? old_late - new_late : 0;
  retired_reorder_peak_ =
      std::max(retired_reorder_peak_, cross.executor->reorder_buffer_peak());
  for (uint64_t c : cross.executor->PerOperatorCloses()) {
    retired_closes_total_ += c;
  }
  for (uint64_t f : cross.executor->PerOperatorFinalizes()) {
    retired_finalizes_total_ += f;
  }
  metrics_.RecordTrace(
      telemetry::TraceKind::kCrossoverDone, 0,
      static_cast<int64_t>(cross.executor->TotalAccumulateOps()));
  cross_.reset();
  // The surviving pipeline takes over late accounting and side outputs.
  executor_->set_late_sink(late_sink_.get());
}

Status StreamSession::CancelCrossover() {
  // Flush the new (gated) executor's canonical closes: its gate passes
  // exactly the start >= cutover era it alone owns, and that emission
  // set provably equals what the old pipeline's gate is suppressing —
  // so delivering it here, before the old pipeline's own checkpoint,
  // keeps the merged output a single static pipeline's (DESIGN.md §15).
  Result<ExecutorCheckpoint> flushed = executor_->Checkpoint();
  if (!flushed.ok()) return flushed.status();
  retired_ops_ += executor_->TotalAccumulateOps();
  for (uint64_t c : executor_->PerOperatorCloses()) {
    retired_closes_total_ += c;
  }
  for (uint64_t f : executor_->PerOperatorFinalizes()) {
    retired_finalizes_total_ += f;
  }
  // Restore the old pipeline into the live slots — it ingested the whole
  // stream, so its state is exactly a static session's. Assignment order
  // destroys the new pipeline in dependency order (executor, then gate,
  // then router). The restored gate keeps max_start = cutover: the
  // caller (a churn Rebuild) checkpoints immediately, and the start >=
  // cutover closes that checkpoint flushes were already delivered above.
  executor_ = std::move(cross_->executor);
  gate_ = std::move(cross_->gate);
  router_ = std::move(cross_->router);
  shared_ = std::move(cross_->shared);
  lineages_ = std::move(cross_->lineages);
  cross_.reset();
  executor_->set_late_sink(late_sink_.get());
  return Status::OK();
}

Status StreamSession::Push(const Event& event) {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  FW_RETURN_IF_ERROR(CheckMutable());
  if (options_.max_delay == 0 && event.timestamp < watermark_) {
    return IngestStopped(
        0, event.timestamp,
        Status::InvalidArgument("out-of-order event: timestamp " +
                                std::to_string(event.timestamp) +
                                " behind watermark " +
                                std::to_string(watermark_)));
  }
  if (event.key >= options_.num_keys) {
    return IngestStopped(
        0, event.timestamp,
        Status::OutOfRange("event key " + std::to_string(event.key) +
                           " outside key space [0, " +
                           std::to_string(options_.num_keys) + ")"));
  }
  // Write-ahead: the event reaches the changelog before it mutates any
  // session state, so a crash between the two replays it instead of
  // losing it.
  if (options_.durability.enabled) {
    Status logged = DurableAppend(event);
    if (!logged.ok()) return IngestStopped(0, event.timestamp, logged);
  }
  if (event.timestamp > watermark_) watermark_ = event.timestamp;
  ++events_pushed_;
  events_pushed_counter_->Increment(0);
  // Event-time lag behind the newest timestamp seen: 0 when in order,
  // the disorder distribution otherwise (late events land past
  // max_delay). Two relaxed adds and a bit_width — no clock read.
  watermark_lag_hist_->Record(
      0, static_cast<uint64_t>(watermark_ - event.timestamp));
  if (!executor_) {
    ++events_dropped_;
    events_dropped_counter_->Increment(0);
    return Status::OK();
  }
  // Dual-push during a crossover, outgoing pipeline first (it owns the
  // earlier result era, and both routers feed the same sinks).
  if (cross_) cross_->executor->Push(event);
  executor_->Push(event);
  if (options_.auto_resize.enabled &&
      ++events_since_resize_check_ >= options_.auto_resize.check_interval) {
    events_since_resize_check_ = 0;
    AutoResizeCheck(events_pushed_, watermark_);
  }
  if (options_.adaptive.enabled &&
      ++events_since_drift_check_ >= options_.adaptive.check_interval) {
    events_since_drift_check_ = 0;
    DriftCheck(events_pushed_, watermark_);
  }
  MaybeCompleteCrossover(watermark_);
  if (durability_) MaybeSnapshot();
  return Status::OK();
}

Status StreamSession::PushBatch(const std::vector<Event>& events) {
  // Rows transpose into columns once, here, so PushColumns is the one
  // batch hot path (same checks, same error wording, same engine folds).
  return PushColumns(EventColumns::FromEvents(events));
}

Status StreamSession::PushColumns(const EventColumns& columns) {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  FW_RETURN_IF_ERROR(CheckMutable());
  FW_RETURN_IF_ERROR(columns.Validate());
  const size_t count = columns.size();
  push_batch_size_hist_->Record(0, count);
  if (count == 0) return Status::OK();

  // In-batch positions where a monitor's cadence crosses. Recording the
  // position *and* the running watermark lets the checks below run with
  // the exact stream position scalar Push would have seen — and carrying
  // the counter remainders (instead of the old at-most-once-per-batch
  // sampling) keeps the cadence identical across batch boundaries, so
  // scalar and columnar ingestion of one stream make the same decisions
  // at the same events.
  struct SamplePoint {
    size_t index;   // Event index within this batch.
    TimeT wm;       // Watermark after accepting that event.
    uint8_t kinds;  // Bit 0: resize check due. Bit 1: drift check due.
  };
  std::vector<SamplePoint> samples;
  const bool monitor_resize =
      executor_ != nullptr && options_.auto_resize.enabled;
  const bool monitor_drift =
      executor_ != nullptr && options_.adaptive.enabled;
  uint64_t resize_streak = events_since_resize_check_;
  uint64_t drift_streak = events_since_drift_check_;

  // Find the acceptable prefix under the ingestion contract — the same
  // per-event checks Push applies, simulated against a local watermark so
  // nothing is committed past the first rejection. Per-event telemetry
  // (the watermark-lag distribution) records exactly as per-event Push
  // would.
  size_t accepted = count;
  Status cause = Status::OK();
  TimeT advanced = watermark_;
  for (size_t i = 0; i < count; ++i) {
    const TimeT timestamp = columns.timestamps[i];
    if (options_.max_delay == 0 && timestamp < advanced) {
      cause = Status::InvalidArgument(
          "out-of-order event: timestamp " + std::to_string(timestamp) +
          " behind watermark " + std::to_string(advanced));
      accepted = i;
      break;
    }
    if (columns.keys[i] >= options_.num_keys) {
      cause = Status::OutOfRange(
          "event key " + std::to_string(columns.keys[i]) +
          " outside key space [0, " + std::to_string(options_.num_keys) +
          ")");
      accepted = i;
      break;
    }
    if (timestamp > advanced) advanced = timestamp;
    watermark_lag_hist_->Record(
        0, static_cast<uint64_t>(advanced - columns.timestamps[i]));
    uint8_t due = 0;
    if (monitor_resize &&
        ++resize_streak >= options_.auto_resize.check_interval) {
      resize_streak = 0;
      due |= 1;
    }
    if (monitor_drift &&
        ++drift_streak >= options_.adaptive.check_interval) {
      drift_streak = 0;
      due |= 2;
    }
    if (due != 0) samples.push_back({i, advanced, due});
  }

  // Write-ahead for the whole accepted prefix, as one changelog record,
  // before any of it mutates session state. An append failure rejects
  // the entire batch (index 0): nothing was applied, so the caller's
  // resume position is the batch start — consistent with the contract.
  if (options_.durability.enabled && accepted > 0) {
    Status logged = DurableAppendColumns(columns, accepted);
    if (!logged.ok()) return IngestStopped(0, columns.timestamps[0], logged);
  }

  // Apply the accepted prefix (possibly the whole batch).
  const uint64_t events_before = events_pushed_;
  watermark_ = advanced;
  events_pushed_ += accepted;
  events_pushed_counter_->Add(0, accepted);
  if (monitor_resize) events_since_resize_check_ = resize_streak;
  if (monitor_drift) events_since_drift_check_ = drift_streak;
  if (!executor_) {
    events_dropped_ += accepted;
    events_dropped_counter_->Add(0, accepted);
  } else if (samples.empty() && !cross_ && accepted == count) {
    executor_->PushColumns(columns);  // Hot path: one hand-off, no copy.
  } else if (accepted > 0) {
    // Split the accepted prefix at the sample points: each segment hands
    // off columnar (to both pipelines during a crossover, outgoing
    // first), then the due checks run at the boundary with that exact
    // stream position — a mid-batch drift replan or resize applies to
    // the remaining segments, just as it would between scalar pushes.
    size_t begin = 0;
    size_t next_sample = 0;
    while (begin < accepted) {
      const SamplePoint* sample =
          next_sample < samples.size() ? &samples[next_sample] : nullptr;
      const size_t end = sample ? sample->index + 1 : accepted;
      if (begin == 0 && end == count) {
        if (cross_) cross_->executor->PushColumns(columns);
        executor_->PushColumns(columns);
      } else {
        const EventColumns segment = SliceColumns(columns, begin, end);
        if (cross_) cross_->executor->PushColumns(segment);
        executor_->PushColumns(segment);
      }
      if (sample) {
        const uint64_t events_at = events_before + sample->index + 1;
        if (sample->kinds & 1) AutoResizeCheck(events_at, sample->wm);
        if (sample->kinds & 2) DriftCheck(events_at, sample->wm);
        // The *running* watermark, not the committed full-batch one:
        // completing against the latter could retire the old pipeline
        // while later rows in this batch still belong to its era.
        MaybeCompleteCrossover(sample->wm);
        ++next_sample;
      }
      begin = end;
    }
  }
  if (executor_ && accepted > 0) MaybeCompleteCrossover(watermark_);
  if (durability_) MaybeSnapshot();
  if (accepted == count) return Status::OK();
  return IngestStopped(accepted, columns.timestamps[accepted], cause);
}

Status StreamSession::Finish() {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  if (finished_) return Status::OK();
  finished_ = true;
  // Finishing mid-crossover retires the old pipeline first: it flushes
  // its (pre-cutover) era through its gate, then the survivor flushes
  // everything from the cutover on — together, one static pipeline's
  // Finish output.
  if (cross_) CompleteCrossover();
  if (executor_) executor_->Finish();
  // A finished executor's rings are drained and its workers joined; the
  // occupancy gauge reads 0, like the idle-retire path.
  ring_occupancy_gauge_->Set(0.0);
  // One final snapshot (finished flag set, no executor checkpoint — the
  // windows all flushed above), so recovering a finished session is a
  // snapshot load with an empty replay.
  if (durability_ && durability_error_.ok()) {
    Status snap = WriteDurableSnapshot();
    if (!snap.ok()) {
      durability_error_ = snap;
      return snap;
    }
  }
  return Status::OK();
}

const QueryPlan* StreamSession::shared_plan() const {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  return shared_ ? &shared_->plan : nullptr;
}

Result<std::string> StreamSession::Explain(QueryId id) const {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  size_t index = FindQuery(id);
  if (index == queries_.size()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  FW_CHECK(shared_ != nullptr);
  const LiveQuery& live = *queries_[index];

  std::string out = "query " + std::to_string(id) + ": " +
                    live.query.ToSql() + "\nsubscriptions:\n";
  for (const MultiQueryOptimizer::Subscription& sub :
       shared_->subscriptions) {
    if (sub.query_index != static_cast<int>(index)) continue;
    out += "  " + sub.window.ToString() + " <- shared operator " +
           std::to_string(sub.plan_operator) + " [" +
           shared_->plan.op(sub.plan_operator).label + "]\n";
  }
  out += "shared plan (" + std::to_string(shared_->plan.num_operators()) +
         " operators serving " + std::to_string(queries_.size()) +
         " queries):\n" + ToSummary(shared_->plan);
  return out;
}

Result<StreamSession::QueryStats> StreamSession::StatsFor(QueryId id) const {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  size_t index = FindQuery(id);
  if (index == queries_.size()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  QueryStats stats;
  stats.results_delivered = queries_[index]->results_delivered;
  if (executor_) {
    std::vector<uint64_t> per_op = executor_->PerOperatorOps();
    // Subscribed operators plus everything upstream of them: the whole
    // provider chain works for this query. Chains overlap, so collect
    // before summing.
    std::vector<bool> attributed(per_op.size(), false);
    for (const MultiQueryOptimizer::Subscription& sub :
         shared_->subscriptions) {
      if (sub.query_index != static_cast<int>(index)) continue;
      int cursor = sub.plan_operator;
      while (cursor >= 0 && !attributed[static_cast<size_t>(cursor)]) {
        attributed[static_cast<size_t>(cursor)] = true;
        cursor = shared_->plan.op(cursor).parent;
      }
    }
    for (size_t i = 0; i < per_op.size(); ++i) {
      if (attributed[i]) stats.attributed_ops += per_op[i];
    }
  }
  return stats;
}

StreamSession::SessionStats StreamSession::Stats() const {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  return BuildStats();
}

StreamSession::SessionStats StreamSession::BuildStats() const {
  SessionStats stats;
  stats.live_queries = queries_.size();
  stats.events_pushed = events_pushed_;
  stats.events_dropped = events_dropped_;
  stats.replans = replans_;
  stats.operators_migrated = last_migrated_;
  stats.operators_cold = last_cold_;
  stats.last_replan_seconds = last_replan_seconds_;
  // Crossover double-processing is real work, so it counts: both
  // pipelines' ops while one is in flight.
  stats.lifetime_ops =
      retired_ops_ + (executor_ ? executor_->TotalAccumulateOps() : 0) +
      (cross_ ? cross_->executor->TotalAccumulateOps() : 0);
  stats.num_shards = executor_
                         ? executor_->num_shards()
                         : EffectiveShards(options_.num_shards,
                                           options_.num_keys);
  stats.resize_count = resize_count_;
  stats.last_resize_ns = last_resize_ns_;
  if (executor_) {
    stats.events_per_shard = executor_->EventsPerShard();
    stats.ring_occupancy = executor_->RingOccupancy();
  }
  // During a crossover the *old* pipeline carries the session's
  // event-time identity: it runs the original reorder clock, so its
  // lates, buffer depth, and watermark are what a static session
  // reports; the new pipeline's reorder stage is a muted warm-up.
  const ShardedExecutor* clock =
      cross_ ? cross_->executor.get() : executor_.get();
  stats.late_events = retired_late_ + (clock ? clock->late_events() : 0);
  stats.reorder_buffered = clock ? clock->reorder_buffered() : 0;
  stats.reorder_buffer_peak = std::max(
      retired_reorder_peak_, clock ? clock->reorder_buffer_peak() : 0);
  if (options_.max_delay == 0) {
    stats.current_watermark = watermark_;
  } else {
    stats.current_watermark =
        clock ? clock->current_watermark() : retired_watermark_;
  }
  if (shared_) {
    stats.shared_cost = shared_->shared_cost;
    stats.original_cost = shared_->original_cost;
    stats.independent_cost = shared_->independent_cost;
    stats.predicted_boost = shared_->PredictedBoost();
    stats.predicted_savings = shared_->PredictedSavings();
    stats.predicted_shard_boost =
        shared_->PredictedShardBoost(options_.num_shards, options_.num_keys);
    stats.sharded_cost =
        shared_->ShardedCost(options_.num_shards, options_.num_keys);
  }
  stats.observed_eta = rate_.has_observations() ? rate_.rate() : 0.0;
  stats.planned_eta = planned_eta_;
  stats.drift_replans = drift_replans_;
  if (durability_) {
    const durability::DurabilityManager::Counters& d =
        durability_->counters();
    stats.wal_records = d.wal_records;
    stats.wal_bytes = d.wal_bytes;
    stats.wal_fsyncs = d.wal_fsyncs;
    stats.snapshots_written = d.snapshots_written;
    stats.truncate_failures = d.truncate_failures;
  }
  return stats;
}

StreamSession::SessionMetrics StreamSession::Metrics() const {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  SessionMetrics metrics;
  metrics.stats = BuildStats();

  // Per-operator breakdown of the current topology — during a crossover,
  // the live (new-plan) pipeline. The executor getters quiesce, so the
  // counts are exact at this instant; they are cumulative across Resize
  // (executor-banked retired tallies) but restart at each replan (new
  // plan, new operators).
  uint64_t closes_total = retired_closes_total_;
  uint64_t finalizes_total = retired_finalizes_total_;
  if (cross_) {
    for (uint64_t c : cross_->executor->PerOperatorCloses()) {
      closes_total += c;
    }
    for (uint64_t f : cross_->executor->PerOperatorFinalizes()) {
      finalizes_total += f;
    }
  }
  if (executor_ && shared_) {
    const std::vector<uint64_t> ops = executor_->PerOperatorOps();
    const std::vector<uint64_t> closes = executor_->PerOperatorCloses();
    const std::vector<uint64_t> finalizes = executor_->PerOperatorFinalizes();
    metrics.operators.reserve(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      OperatorMetrics op;
      op.operator_id = static_cast<int>(i);
      op.label = shared_->plan.op(static_cast<int>(i)).label;
      op.accumulate_ops = ops[i];
      op.closed_instances = i < closes.size() ? closes[i] : 0;
      op.finalized_results = i < finalizes.size() ? finalizes[i] : 0;
      closes_total += op.closed_instances;
      finalizes_total += op.finalized_results;
      metrics.operators.push_back(std::move(op));
    }
  }
  metrics.closed_instances_total = closes_total;
  metrics.finalized_results_total = finalizes_total;

  // Publish the instantaneous session view into the registry, so the
  // snapshot below (and any Prometheus/JSON render of it) carries the
  // session gauges alongside the hot-path counters and histograms.
  live_queries_gauge_->Set(static_cast<double>(metrics.stats.live_queries));
  num_shards_gauge_->Set(static_cast<double>(metrics.stats.num_shards));
  ring_occupancy_gauge_->Set(metrics.stats.ring_occupancy);
  reorder_buffered_gauge_->Set(
      static_cast<double>(metrics.stats.reorder_buffered));
  accumulate_ops_gauge_->Set(static_cast<double>(metrics.stats.lifetime_ops));
  closed_total_gauge_->Set(static_cast<double>(closes_total));
  finalized_total_gauge_->Set(static_cast<double>(finalizes_total));
  observed_eta_gauge_->Set(metrics.stats.observed_eta);

  metrics.telemetry = metrics_.Snapshot();
  return metrics;
}

std::vector<QueryId> StreamSession::QueryIds() const {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  std::vector<QueryId> ids;
  ids.reserve(queries_.size());
  for (const auto& q : queries_) ids.push_back(q->id);
  return ids;
}

Status StreamSession::CheckDurable() {
  if (!durability_error_.ok()) return durability_error_;
  FW_CHECK(durability_ != nullptr);
  return Status::OK();
}

Status StreamSession::DurableAppend(const Event& event) {
  FW_RETURN_IF_ERROR(CheckDurable());
  durable_scratch_.clear();
  durable_scratch_.Append(event);
  Status logged = durability_->AppendEvents(durable_scratch_);
  if (!logged.ok()) durability_error_ = logged;
  return logged;
}

Status StreamSession::DurableAppendColumns(const EventColumns& columns,
                                           size_t accepted) {
  FW_RETURN_IF_ERROR(CheckDurable());
  // Only admitted events belong in the changelog: a rejected suffix was
  // never applied, and replay must not apply it either.
  Status logged = accepted == columns.size()
                      ? durability_->AppendEvents(columns)
                      : durability_->AppendEvents(
                            SliceColumns(columns, 0, accepted));
  if (!logged.ok()) durability_error_ = logged;
  return logged;
}

void StreamSession::MaybeSnapshot() {
  // Deferred while a drift crossover is in flight: the dual-pipeline
  // state is transient and the canonical checkpoint describes one
  // pipeline — the next quiescent batch boundary snapshots instead.
  if (!durability_ || cross_ || !durability_error_.ok()) return;
  if (!durability_->SnapshotDue()) return;
  Status snap = WriteDurableSnapshot();
  // A failed snapshot latches (fail-stop on the next ingest) but does
  // not fail the Push that triggered it: that batch was logged and
  // applied — it is durable through the changelog.
  if (!snap.ok()) durability_error_ = snap;
}

Status StreamSession::WriteDurableSnapshot() {
  durability::SnapshotContents contents;
  FW_RETURN_IF_ERROR(BuildDurableSnapshot(&contents));
  return durability_->WriteSnapshot(std::move(contents));
}

Status StreamSession::BuildDurableSnapshot(
    durability::SnapshotContents* out) {
  MonotonicTimer timer;
  durability::SnapshotContents& contents = *out;
  durability::SnapshotMeta& meta = contents.meta;
  constexpr TimeT kNoWatermark = std::numeric_limits<TimeT>::min();
  meta.covered_events = events_pushed_;
  meta.num_keys = options_.num_keys;
  meta.max_delay = options_.max_delay;
  meta.late_policy = static_cast<uint8_t>(options_.late_policy);
  meta.finished = finished_ ? 1 : 0;
  meta.events_pushed = events_pushed_;
  meta.events_dropped = events_dropped_;
  meta.replans = replans_;
  meta.drift_replans = drift_replans_;
  meta.resize_count = resize_count_;
  meta.next_id = next_id_;
  meta.watermark_valid = watermark_ != kNoWatermark ? 1 : 0;
  meta.watermark = meta.watermark_valid ? watermark_ : 0;
  meta.retired_ops = retired_ops_;
  meta.retired_late = retired_late_;
  meta.retired_reorder_peak = retired_reorder_peak_;
  meta.retired_closes_total = retired_closes_total_;
  meta.retired_finalizes_total = retired_finalizes_total_;
  meta.retired_watermark_valid = retired_watermark_ != kNoWatermark ? 1 : 0;
  meta.retired_watermark = meta.retired_watermark_valid ? retired_watermark_ : 0;
  meta.planned_eta = planned_eta_;
  contents.queries.reserve(queries_.size());
  for (const auto& q : queries_) {
    contents.queries.push_back({q->id, q->query});
  }
  if (executor_ && !finished_) {
    // Canonical merged checkpoint: CloseThrough-canonicalized, shard
    // counts merged into the global view — a pure function of the
    // delivered stream, which is what makes recovery bitwise exact.
    Result<ExecutorCheckpoint> checkpoint = executor_->Checkpoint();
    if (!checkpoint.ok()) return checkpoint.status();
    contents.checkpoint = checkpoint->Serialize();
    contents.has_checkpoint = true;
    metrics_.RecordTrace(telemetry::TraceKind::kCheckpoint,
                         timer.ElapsedNanos(),
                         static_cast<int64_t>(checkpoint->operators.size()));
  }
  return Status::OK();
}

Status StreamSession::ReplayRecord(const durability::WalRecord& record,
                                   const CallbackFactory& callbacks) {
  switch (record.type) {
    case durability::kWalEvents: {
      EventColumns columns;
      FW_RETURN_IF_ERROR(
          durability::DecodeEventsPayload(record.payload, &columns));
      return PushColumns(columns);
    }
    case durability::kWalAddQuery: {
      uint64_t id = 0;
      StreamQuery query;
      FW_RETURN_IF_ERROR(
          durability::DecodeQueryPayload(record.payload, &id, &query));
      next_id_ = id;  // Replayed queries keep their original ids.
      Result<QueryId> added =
          AddQuery(query, callbacks ? callbacks(id, query) : nullptr);
      if (!added.ok()) return added.status();
      FW_CHECK_EQ(*added, id);
      return Status::OK();
    }
    case durability::kWalRemoveQuery: {
      uint64_t id = 0;
      FW_RETURN_IF_ERROR(
          durability::DecodeRemoveQueryPayload(record.payload, &id));
      return RemoveQuery(id);
    }
    default:
      return Status::InvalidArgument("unknown changelog record type " +
                                     std::to_string(record.type));
  }
}

Result<StreamSession::RecoveryInfo> StreamSession::Recover(
    std::string_view dir, Options options, const CallbackFactory& callbacks) {
  MonotonicTimer timer;
  options.durability.dir = std::string(dir);

  Result<durability::LoadedSnapshot> loaded =
      durability::LoadLatestSnapshot(options.durability.dir);
  if (!loaded.ok()) return loaded.status();
  const durability::SnapshotMeta& meta = loaded->contents.meta;

  if (loaded->found) {
    // The options that shape results must match the crashed session's;
    // num_shards deliberately may differ (sharding is output-invariant,
    // and the checkpoint restores at any width).
    if (meta.num_keys != options.num_keys ||
        meta.max_delay != options.max_delay ||
        meta.late_policy != static_cast<uint8_t>(options.late_policy)) {
      return Status::InvalidArgument(
          "recovery options disagree with the snapshot: snapshot has "
          "num_keys " +
          std::to_string(meta.num_keys) + ", max_delay " +
          std::to_string(meta.max_delay) + ", late_policy " +
          std::to_string(meta.late_policy) + "; options request num_keys " +
          std::to_string(options.num_keys) + ", max_delay " +
          std::to_string(options.max_delay) + ", late_policy " +
          std::to_string(static_cast<uint8_t>(options.late_policy)));
    }
  }

  const uint64_t start_seq = loaded->found ? meta.covered_seq : 0;
  std::vector<durability::WalRecord> records;
  FW_RETURN_IF_ERROR(durability::ReadChangelog(options.durability.dir,
                                               start_seq, &records));
  const uint64_t next_seq =
      records.empty() ? start_seq : records.back().seq + 1;

  // Build with durability off — replay must not re-log the changelog —
  // and at the snapshot's planned η: the optimizer is deterministic, so
  // re-optimizing the snapshot's query set at that η reproduces the
  // checkpointed plan structure, and the executor Restore below lands on
  // matching operators.
  Options replay_options = options;
  replay_options.durability = {};
  if (loaded->found) replay_options.optimizer.eta = meta.planned_eta;
  auto session = std::make_unique<StreamSession>(replay_options);
  session->session_role_.AssertHeld();  // Constructed on this thread.

  RecoveryInfo info;
  info.snapshots_skipped = loaded->skipped;

  if (loaded->found) {
    info.snapshot_events = meta.covered_events;
    for (const durability::SnapshotQuery& snap_query :
         loaded->contents.queries) {
      session->next_id_ = snap_query.id;  // Ids survive recovery.
      Result<QueryId> added = session->AddQuery(
          snap_query.query,
          callbacks ? callbacks(snap_query.id, snap_query.query) : nullptr);
      if (!added.ok()) {
        return Status(added.status().code(),
                      "recovery could not re-install query " +
                          std::to_string(snap_query.id) + ": " +
                          added.status().message());
      }
      FW_CHECK_EQ(*added, snap_query.id);
    }
    if (loaded->contents.has_checkpoint) {
      if (session->executor_ == nullptr) {
        return Status::InvalidArgument(
            "snapshot carries an executor checkpoint but no queries");
      }
      Result<ExecutorCheckpoint> checkpoint =
          ExecutorCheckpoint::Deserialize(loaded->contents.checkpoint);
      if (!checkpoint.ok()) {
        return Status(checkpoint.status().code(),
                      "snapshot checkpoint rejected: " +
                          checkpoint.status().message());
      }
      Status restored = session->executor_->Restore(*checkpoint);
      if (!restored.ok()) {
        return Status(restored.code(), "snapshot checkpoint rejected: " +
                                           restored.message());
      }
    }
    // Overwrite the counters the installs above advanced with the
    // snapshot's values; replay advances them naturally from here.
    constexpr TimeT kNoWatermark = std::numeric_limits<TimeT>::min();
    session->next_id_ = meta.next_id;
    session->watermark_ =
        meta.watermark_valid ? meta.watermark : kNoWatermark;
    session->events_pushed_ = meta.events_pushed;
    session->events_dropped_ = meta.events_dropped;
    session->replans_ = static_cast<int>(meta.replans);
    session->drift_replans_ = static_cast<int>(meta.drift_replans);
    session->resize_count_ = meta.resize_count;
    session->retired_ops_ = meta.retired_ops;
    session->retired_late_ = meta.retired_late;
    session->retired_reorder_peak_ = meta.retired_reorder_peak;
    session->retired_closes_total_ = meta.retired_closes_total;
    session->retired_finalizes_total_ = meta.retired_finalizes_total;
    session->retired_watermark_ =
        meta.retired_watermark_valid ? meta.retired_watermark : kNoWatermark;
    session->planned_eta_ = meta.planned_eta;
    if (meta.finished) session->finished_ = true;
  }

  // Replay the changelog suffix. Results finalized after the snapshot
  // re-deliver here (at-least-once), bitwise identical to the original
  // delivery; a failure names the exact stop position.
  for (const durability::WalRecord& record : records) {
    Status applied = session->ReplayRecord(record, callbacks);
    if (!applied.ok()) {
      return RecoveryStopped(record.segment_base, record.index_in_segment,
                             applied);
    }
    ++info.replayed_records;
  }

  // Publish a snapshot of the recovered state BEFORE resuming durable
  // logging: it covers everything replayed — including any torn tail in
  // the old newest segment — and must be durable before Attach opens a
  // fresh segment. Opening first would demote the torn segment to
  // non-newest while records past the old snapshot's coverage could
  // still be lost in it; a crash inside the (checkpoint-sized) snapshot
  // write would then brick every later recovery. In this order a crash
  // either leaves the directory unchanged (recovery re-runs) or
  // snapshot-covered (the torn segment is fully covered, so the reader
  // skips it).
  durability::SnapshotContents recovery_snapshot;
  FW_RETURN_IF_ERROR(session->BuildDurableSnapshot(&recovery_snapshot));
  recovery_snapshot.meta.covered_seq = next_seq;
  FW_RETURN_IF_ERROR(durability::WriteSnapshotFile(options.durability.dir,
                                                   recovery_snapshot));

  session->options_.durability = options.durability;
  session->options_.durability.enabled = true;
  Result<std::unique_ptr<durability::DurabilityManager>> manager =
      durability::DurabilityManager::Attach(session->options_.durability,
                                            next_seq, &session->metrics_);
  if (!manager.ok()) return manager.status();
  session->durability_ = std::move(*manager);
  // Count the snapshot and truncate the files it covers now that the
  // fresh segment (base == next_seq) exists.
  session->durability_->NoteSnapshotPublished(next_seq);

  session->metrics_.RecordTrace(
      telemetry::TraceKind::kRecovery, timer.ElapsedNanos(),
      static_cast<int64_t>(info.replayed_records), info.snapshots_skipped);
  info.durable_events = session->events_pushed_;
  info.recovered_queries = session->queries_.size();
  info.session = std::move(session);
  return info;
}

RuntimeProfile StreamSession::Profile() const {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  RuntimeProfile profile;
  if (rate_.has_observations()) profile.observed_eta = rate_.rate();
  if (executor_) {
    const std::vector<uint64_t> per_shard = executor_->EventsPerShard();
    uint64_t total = 0;
    uint64_t peak = 0;
    for (uint64_t events : per_shard) {
      total += events;
      peak = std::max(peak, events);
    }
    if (total > 0 && !per_shard.empty()) {
      profile.key_skew =
          static_cast<double>(peak) /
          (static_cast<double>(total) / static_cast<double>(per_shard.size()));
    }
    const std::vector<uint64_t> ops = executor_->PerOperatorOps();
    const std::vector<uint64_t> closes = executor_->PerOperatorCloses();
    const std::vector<uint64_t> finalizes = executor_->PerOperatorFinalizes();
    profile.operators.reserve(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      RuntimeProfile::OperatorProfile op;
      op.operator_id = static_cast<int>(i);
      op.accumulate_ops = ops[i];
      op.closed_instances = i < closes.size() ? closes[i] : 0;
      op.finalized_results = i < finalizes.size() ? finalizes[i] : 0;
      profile.operators.push_back(op);
    }
  }
  return profile;
}

}  // namespace fw
