#include "session/session.h"

#include <algorithm>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "exec/migrate.h"
#include "exec/reorder.h"
#include "plan/printer.h"
#include "query/parser.h"
#include "runtime/partition.h"

namespace fw {

namespace {

/// The one place the unified ingestion error contract is worded
/// (session.h, Push): every rejection from Push, PushBatch, or
/// PushColumns names the first rejected event's index within the call
/// and its timestamp, with the cause appended. Events before the index
/// were applied.
Status IngestStopped(size_t index, TimeT timestamp, const Status& cause) {
  return Status(cause.code(),
                "ingest stopped at event " + std::to_string(index) +
                    " (timestamp " + std::to_string(timestamp) +
                    "): " + cause.message());
}

}  // namespace

void StreamSession::CallbackSink::OnResult(const WindowResult& result) {
  ++owner_->results_delivered;
  if (owner_->callback) owner_->callback(result);
}

StreamSession::StreamSession() : StreamSession(Options{}) {}

StreamSession::StreamSession(const Options& options)
    : options_(options),
      watermark_lag_hist_(metrics_.GetHistogram("session.watermark_lag")),
      push_batch_size_hist_(
          metrics_.GetHistogram("session.push_batch_size")),
      events_pushed_counter_(metrics_.GetCounter("session.events_pushed")),
      events_dropped_counter_(metrics_.GetCounter("session.events_dropped")),
      replans_counter_(metrics_.GetCounter("session.replans")),
      resizes_counter_(metrics_.GetCounter("session.resizes")),
      ring_occupancy_gauge_(metrics_.GetGauge("session.ring_occupancy")),
      live_queries_gauge_(metrics_.GetGauge("session.live_queries")),
      num_shards_gauge_(metrics_.GetGauge("session.num_shards")),
      reorder_buffered_gauge_(metrics_.GetGauge("session.reorder_buffered")),
      accumulate_ops_gauge_(metrics_.GetGauge("engine.accumulate_ops_total")),
      closed_total_gauge_(metrics_.GetGauge("engine.closed_instances_total")),
      finalized_total_gauge_(
          metrics_.GetGauge("engine.finalized_results_total")) {
  session_role_.AssertHeld();  // Constructing thread is the caller thread.
  FW_CHECK_GT(options.num_keys, 0u);
  FW_CHECK_GE(options.max_delay, 0);
  if (options_.max_delay > 0 &&
      options_.late_policy == LatePolicy::kSideOutput &&
      options_.late_callback) {
    late_sink_ = std::make_unique<ConsumerFn<LateEventCallback>>(
        options_.late_callback);
  }
}

StreamSession::~StreamSession() {
  session_role_.AssertHeld();  // Destroying thread is the caller thread.
  // The executor references the router, which references the queries'
  // sinks; tear down in dependency order.
  executor_.reset();
  router_.reset();
}

Status StreamSession::CheckMutable() const {
  if (finished_) {
    return Status::InvalidArgument("session is finished");
  }
  return Status::OK();
}

Result<QueryId> StreamSession::AddQuery(const StreamQuery& query,
                                        ResultCallback callback) {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  FW_RETURN_IF_ERROR(CheckMutable());
  if (query.windows.empty()) {
    return Status::InvalidArgument("query without windows");
  }
  if (query.agg == nullptr) {
    return Status::InvalidArgument("query without an aggregate function");
  }
  if (!SupportsSharing(query.agg)) {
    return Status::Unimplemented(
        query.agg->name +
        " is holistic and cannot join a shared session; execute "
        "QueryPlan::Original directly instead");
  }
  // Grouping is an execution property of the whole session (every event
  // carries one key drawn from [0, num_keys)), so a global aggregate in a
  // keyed session would silently produce per-key results.
  if (!query.per_key && options_.num_keys > 1) {
    return Status::InvalidArgument(
        "global (non-PerKey) query in a session with num_keys " +
        std::to_string(options_.num_keys) +
        "; declare PerKey or use a num_keys=1 session");
  }
  if (!queries_.empty()) {
    const StreamQuery& first = queries_.front()->query;
    if (query.source != first.source) {
      return Status::InvalidArgument(
          "session reads stream '" + first.source + "', query reads '" +
          query.source + "'");
    }
    if (query.agg != first.agg) {
      return Status::InvalidArgument(
          "session aggregates " + first.agg->name + ", query aggregates " +
          query.agg->name);
    }
    if (query.per_key != first.per_key ||
        query.key_column != first.key_column) {
      return Status::InvalidArgument(
          "session groups by '" +
          (first.per_key ? first.key_column : std::string("<none>")) +
          "', query groups by '" +
          (query.per_key ? query.key_column : std::string("<none>")) + "'");
    }
  }

  auto live = std::make_unique<LiveQuery>();
  live->id = next_id_;
  live->query = query;
  live->callback = std::move(callback);

  std::vector<LiveQuery*> candidate;
  candidate.reserve(queries_.size() + 1);
  for (const auto& q : queries_) candidate.push_back(q.get());
  candidate.push_back(live.get());
  FW_RETURN_IF_ERROR(Rebuild(candidate));

  ++next_id_;
  queries_.push_back(std::move(live));
  return queries_.back()->id;
}

Result<QueryId> StreamSession::AddQuery(std::string_view sql,
                                        ResultCallback callback) {
  Result<StreamQuery> query = ParseQuery(sql);
  if (!query.ok()) return query.status();
  return AddQuery(*query, std::move(callback));
}

Result<QueryId> StreamSession::AddQuery(const QueryBuilder& builder,
                                        ResultCallback callback) {
  Result<StreamQuery> query = builder.Build();
  if (!query.ok()) return query.status();
  return AddQuery(*query, std::move(callback));
}

size_t StreamSession::FindQuery(QueryId id) const {
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i]->id == id) return i;
  }
  return queries_.size();
}

Status StreamSession::RemoveQuery(QueryId id) {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  FW_RETURN_IF_ERROR(CheckMutable());
  size_t index = FindQuery(id);
  if (index == queries_.size()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  std::vector<LiveQuery*> remaining;
  remaining.reserve(queries_.size() - 1);
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (i != index) remaining.push_back(queries_[i].get());
  }
  FW_RETURN_IF_ERROR(Rebuild(remaining));
  queries_.erase(queries_.begin() + static_cast<ptrdiff_t>(index));
  return Status::OK();
}

Status StreamSession::Rebuild(const std::vector<LiveQuery*>& live) {
  MonotonicTimer timer;

  if (live.empty()) {
    // Session went idle: retire the whole pipeline (in-flight windows are
    // dropped — nobody subscribes to them anymore). Results already
    // emitted but still buffered in the shards belong to windows that
    // closed before the removal, so deliver them first, exactly like the
    // single-threaded path did during Push.
    if (executor_) {
      executor_->Drain();
      retired_ops_ += executor_->TotalAccumulateOps();
      // The reorder stage retires with the pipeline: its buffered events
      // belonged to windows nobody subscribes to anymore, its counters
      // move into the session tallies, and the event-time clock restarts
      // on revival.
      retired_late_ += executor_->late_events();
      retired_reorder_peak_ =
          std::max(retired_reorder_peak_, executor_->reorder_buffer_peak());
      retired_watermark_ = executor_->current_watermark();
      for (uint64_t c : executor_->PerOperatorCloses()) {
        retired_closes_total_ += c;
      }
      for (uint64_t f : executor_->PerOperatorFinalizes()) {
        retired_finalizes_total_ += f;
      }
      metrics_.RecordTrace(telemetry::TraceKind::kIdleRetire);
    }
    executor_.reset();
    router_.reset();
    shared_.reset();
    lineages_.clear();
    // A retired pipeline has no hand-off rings: the occupancy gauge must
    // read 0, not the last live sample (the ring_occupancy staleness
    // contract, pinned by the stats-lifecycle regression tests).
    ring_occupancy_gauge_->Set(0.0);
    ++replans_;
    replans_counter_->Increment(0);
    last_migrated_ = 0;
    last_cold_ = 0;
    last_replan_seconds_ = timer.ElapsedSeconds();
    return Status::OK();
  }

  std::vector<StreamQuery> queries;
  std::vector<ResultSink*> sinks;
  queries.reserve(live.size());
  sinks.reserve(live.size());
  for (LiveQuery* q : live) {
    queries.push_back(q->query);
    sinks.push_back(&q->sink);
  }

  Result<MultiQueryOptimizer::SharedPlan> shared =
      MultiQueryOptimizer::Reoptimize(queries, options_.optimizer,
                                      options_.track_baseline);
  if (!shared.ok()) return shared.status();

  // Materialize the owned plan first: the executor keeps a pointer to it
  // for its whole lifetime (Resize rebuilds engines over it), so it must
  // live at its final address before any executor is constructed.
  auto shared_owned = std::make_unique<MultiQueryOptimizer::SharedPlan>(
      std::move(*shared));

  // Carry surviving operator state across the swap (see class comment for
  // the migration semantics). ShardedExecutor::Checkpoint drains buffered
  // results through the old router and merges the shards into the global
  // view, so the lineage migration below is shard-count agnostic.
  std::vector<std::string> lineages = OperatorLineages(shared_owned->plan);
  CheckpointMigration migration;
  if (executor_) {
    Result<ExecutorCheckpoint> checkpoint = executor_->Checkpoint();
    if (!checkpoint.ok()) return checkpoint.status();
    migration = MigrateCheckpoint(*checkpoint, lineages_, lineages);
  } else {
    migration.cold = static_cast<int>(shared_owned->plan.num_operators());
  }

  auto router = std::make_unique<RoutingSink>(*shared_owned, queries,
                                              std::move(sinks));
  ShardedExecutor::Options exec_options;
  exec_options.num_keys = options_.num_keys;
  exec_options.num_shards = options_.num_shards;
  exec_options.max_delay = options_.max_delay;
  exec_options.late_sink = late_sink_.get();
  exec_options.metrics = &metrics_;
  auto executor = std::make_unique<ShardedExecutor>(shared_owned->plan,
                                                    exec_options,
                                                    router.get());
  if (executor_) {
    FW_RETURN_IF_ERROR(executor->Restore(migration.checkpoint));
    retired_ops_ += executor_->TotalAccumulateOps() - migration.carried_ops;
    // Close/finalize counts never migrate (they are not in the
    // checkpoint): the whole outgoing pipeline's tallies retire here,
    // and the new engines restart at zero.
    for (uint64_t c : executor_->PerOperatorCloses()) {
      retired_closes_total_ += c;
    }
    for (uint64_t f : executor_->PerOperatorFinalizes()) {
      retired_finalizes_total_ += f;
    }
  }

  // Commit; destroy the old executor before the router it references.
  executor_ = std::move(executor);
  router_ = std::move(router);
  shared_ = std::move(shared_owned);
  lineages_ = std::move(lineages);
  ++replans_;
  replans_counter_->Increment(0);
  last_migrated_ = migration.migrated;
  last_cold_ = migration.cold;
  last_replan_seconds_ = timer.ElapsedSeconds();
  metrics_.RecordTrace(telemetry::TraceKind::kReplan, timer.ElapsedNanos(),
                       migration.migrated, migration.cold);
  return Status::OK();
}

Status StreamSession::Resize(uint32_t new_num_shards) {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  FW_RETURN_IF_ERROR(CheckMutable());
  if (new_num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  MonotonicTimer timer;
  const uint32_t width_before =
      executor_ ? executor_->num_shards()
                : EffectiveShards(options_.num_shards, options_.num_keys);
  if (executor_) {
    // In-place exact handoff (runtime/ShardedExecutor::Resize): drains,
    // merges shard checkpoints, rebuilds at the new width, re-splits.
    // Cumulative counters ride inside the checkpoint, so nothing is
    // retired here.
    FW_RETURN_IF_ERROR(executor_->Resize(new_num_shards));
  }
  options_.num_shards = new_num_shards;  // Future replans keep the width.
  ++resize_count_;
  resizes_counter_->Increment(0);
  last_resize_ns_ = timer.ElapsedNanos();
  metrics_.RecordTrace(telemetry::TraceKind::kResize, last_resize_ns_,
                       width_before,
                       executor_ ? executor_->num_shards()
                                 : EffectiveShards(options_.num_shards,
                                                   options_.num_keys));
  low_occupancy_checks_ = 0;
  return Status::OK();
}

void StreamSession::AutoResizeCheck() {
  const AutoResizeOptions& policy = options_.auto_resize;
  const uint32_t floor = std::max(policy.min_shards, 1u);
  const uint32_t ceiling = std::max(policy.max_shards, floor);
  const uint32_t current = executor_->num_shards();
  uint32_t target = current;
  if (current < floor) {
    target = floor;  // Clamp into range (boots 1-shard sessions up).
  } else if (current > ceiling) {
    target = ceiling;
  } else {
    const double occupancy = executor_->RingOccupancy();
    ring_occupancy_gauge_->Set(occupancy);
    if (occupancy >= policy.scale_up_occupancy && current < ceiling) {
      target = std::min(current * 2, ceiling);
      low_occupancy_checks_ = 0;
    } else if (occupancy <= policy.scale_down_occupancy &&
               current > std::max(floor, 2u)) {
      // Never scale *into* inline mode: a 1-shard session has no rings,
      // so the occupancy signal vanishes and the monitor could never
      // scale back up. Reaching 1 shard takes an explicit Resize.
      if (++low_occupancy_checks_ < policy.scale_down_checks) return;
      target = std::max(current / 2, std::max(floor, 2u));
    } else {
      low_occupancy_checks_ = 0;
      return;
    }
  }
  // A resize that cannot change the effective width (keyless plan, or
  // already one shard per key) would churn executors for nothing — the
  // cost model prices it as gain 1.
  if (target == current ||
      EffectiveShards(target, options_.num_keys) == current ||
      (target > current && shared_ &&
       shared_->PredictedResizeGain(current, target, options_.num_keys) <=
           1.0)) {
    return;
  }
  // Best-effort: a failed auto-resize (cannot happen for the plans a
  // session admits — they always checkpoint) leaves the session at its
  // current width, to retry at the next sample.
  Status status = Resize(target);
  (void)status;
}

Status StreamSession::Push(const Event& event) {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  FW_RETURN_IF_ERROR(CheckMutable());
  if (options_.max_delay == 0 && event.timestamp < watermark_) {
    return IngestStopped(
        0, event.timestamp,
        Status::InvalidArgument("out-of-order event: timestamp " +
                                std::to_string(event.timestamp) +
                                " behind watermark " +
                                std::to_string(watermark_)));
  }
  if (event.key >= options_.num_keys) {
    return IngestStopped(
        0, event.timestamp,
        Status::OutOfRange("event key " + std::to_string(event.key) +
                           " outside key space [0, " +
                           std::to_string(options_.num_keys) + ")"));
  }
  if (event.timestamp > watermark_) watermark_ = event.timestamp;
  ++events_pushed_;
  events_pushed_counter_->Increment(0);
  // Event-time lag behind the newest timestamp seen: 0 when in order,
  // the disorder distribution otherwise (late events land past
  // max_delay). Two relaxed adds and a bit_width — no clock read.
  watermark_lag_hist_->Record(
      0, static_cast<uint64_t>(watermark_ - event.timestamp));
  if (!executor_) {
    ++events_dropped_;
    events_dropped_counter_->Increment(0);
    return Status::OK();
  }
  executor_->Push(event);
  if (options_.auto_resize.enabled &&
      ++events_since_resize_check_ >= options_.auto_resize.check_interval) {
    events_since_resize_check_ = 0;
    AutoResizeCheck();
  }
  return Status::OK();
}

Status StreamSession::PushBatch(const std::vector<Event>& events) {
  // Rows transpose into columns once, here, so PushColumns is the one
  // batch hot path (same checks, same error wording, same engine folds).
  return PushColumns(EventColumns::FromEvents(events));
}

Status StreamSession::PushColumns(const EventColumns& columns) {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  FW_RETURN_IF_ERROR(CheckMutable());
  FW_RETURN_IF_ERROR(columns.Validate());
  const size_t count = columns.size();
  push_batch_size_hist_->Record(0, count);
  if (count == 0) return Status::OK();

  // Find the acceptable prefix under the ingestion contract — the same
  // per-event checks Push applies, simulated against a local watermark so
  // nothing is committed past the first rejection. Per-event telemetry
  // (the watermark-lag distribution) records exactly as per-event Push
  // would.
  size_t accepted = count;
  Status cause = Status::OK();
  TimeT advanced = watermark_;
  for (size_t i = 0; i < count; ++i) {
    const TimeT timestamp = columns.timestamps[i];
    if (options_.max_delay == 0 && timestamp < advanced) {
      cause = Status::InvalidArgument(
          "out-of-order event: timestamp " + std::to_string(timestamp) +
          " behind watermark " + std::to_string(advanced));
      accepted = i;
      break;
    }
    if (columns.keys[i] >= options_.num_keys) {
      cause = Status::OutOfRange(
          "event key " + std::to_string(columns.keys[i]) +
          " outside key space [0, " + std::to_string(options_.num_keys) +
          ")");
      accepted = i;
      break;
    }
    if (timestamp > advanced) advanced = timestamp;
    watermark_lag_hist_->Record(
        0, static_cast<uint64_t>(advanced - columns.timestamps[i]));
  }

  // Apply the accepted prefix (possibly the whole batch).
  watermark_ = advanced;
  events_pushed_ += accepted;
  events_pushed_counter_->Add(0, accepted);
  if (!executor_) {
    events_dropped_ += accepted;
    events_dropped_counter_->Add(0, accepted);
  } else if (accepted == count) {
    executor_->PushColumns(columns);
  } else if (accepted > 0) {
    // Rejection mid-batch is the cold path: copy the accepted prefix so
    // the executor still sees one columnar hand-off.
    EventColumns prefix;
    prefix.Reserve(accepted);
    prefix.timestamps.assign(columns.timestamps.begin(),
                             columns.timestamps.begin() +
                                 static_cast<ptrdiff_t>(accepted));
    prefix.keys.assign(columns.keys.begin(),
                       columns.keys.begin() +
                           static_cast<ptrdiff_t>(accepted));
    prefix.values.assign(columns.values.begin(),
                         columns.values.begin() +
                             static_cast<ptrdiff_t>(accepted));
    executor_->PushColumns(prefix);
  }
  if (executor_ && options_.auto_resize.enabled && accepted > 0) {
    // One monitor step per batch (vs per event): resizes are exact, so
    // *when* they trigger never affects results — only the sampling
    // cadence coarsens to batch granularity.
    events_since_resize_check_ += accepted;
    if (events_since_resize_check_ >= options_.auto_resize.check_interval) {
      events_since_resize_check_ = 0;
      AutoResizeCheck();
    }
  }
  if (accepted == count) return Status::OK();
  return IngestStopped(accepted, columns.timestamps[accepted], cause);
}

Status StreamSession::Finish() {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  if (finished_) return Status::OK();
  finished_ = true;
  if (executor_) executor_->Finish();
  // A finished executor's rings are drained and its workers joined; the
  // occupancy gauge reads 0, like the idle-retire path.
  ring_occupancy_gauge_->Set(0.0);
  return Status::OK();
}

const QueryPlan* StreamSession::shared_plan() const {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  return shared_ ? &shared_->plan : nullptr;
}

Result<std::string> StreamSession::Explain(QueryId id) const {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  size_t index = FindQuery(id);
  if (index == queries_.size()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  FW_CHECK(shared_ != nullptr);
  const LiveQuery& live = *queries_[index];

  std::string out = "query " + std::to_string(id) + ": " +
                    live.query.ToSql() + "\nsubscriptions:\n";
  for (const MultiQueryOptimizer::Subscription& sub :
       shared_->subscriptions) {
    if (sub.query_index != static_cast<int>(index)) continue;
    out += "  " + sub.window.ToString() + " <- shared operator " +
           std::to_string(sub.plan_operator) + " [" +
           shared_->plan.op(sub.plan_operator).label + "]\n";
  }
  out += "shared plan (" + std::to_string(shared_->plan.num_operators()) +
         " operators serving " + std::to_string(queries_.size()) +
         " queries):\n" + ToSummary(shared_->plan);
  return out;
}

Result<StreamSession::QueryStats> StreamSession::StatsFor(QueryId id) const {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  size_t index = FindQuery(id);
  if (index == queries_.size()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  QueryStats stats;
  stats.results_delivered = queries_[index]->results_delivered;
  if (executor_) {
    std::vector<uint64_t> per_op = executor_->PerOperatorOps();
    // Subscribed operators plus everything upstream of them: the whole
    // provider chain works for this query. Chains overlap, so collect
    // before summing.
    std::vector<bool> attributed(per_op.size(), false);
    for (const MultiQueryOptimizer::Subscription& sub :
         shared_->subscriptions) {
      if (sub.query_index != static_cast<int>(index)) continue;
      int cursor = sub.plan_operator;
      while (cursor >= 0 && !attributed[static_cast<size_t>(cursor)]) {
        attributed[static_cast<size_t>(cursor)] = true;
        cursor = shared_->plan.op(cursor).parent;
      }
    }
    for (size_t i = 0; i < per_op.size(); ++i) {
      if (attributed[i]) stats.attributed_ops += per_op[i];
    }
  }
  return stats;
}

StreamSession::SessionStats StreamSession::Stats() const {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  return BuildStats();
}

StreamSession::SessionStats StreamSession::BuildStats() const {
  SessionStats stats;
  stats.live_queries = queries_.size();
  stats.events_pushed = events_pushed_;
  stats.events_dropped = events_dropped_;
  stats.replans = replans_;
  stats.operators_migrated = last_migrated_;
  stats.operators_cold = last_cold_;
  stats.last_replan_seconds = last_replan_seconds_;
  stats.lifetime_ops =
      retired_ops_ + (executor_ ? executor_->TotalAccumulateOps() : 0);
  stats.num_shards = executor_
                         ? executor_->num_shards()
                         : EffectiveShards(options_.num_shards,
                                           options_.num_keys);
  stats.resize_count = resize_count_;
  stats.last_resize_ns = last_resize_ns_;
  if (executor_) {
    stats.events_per_shard = executor_->EventsPerShard();
    stats.ring_occupancy = executor_->RingOccupancy();
  }
  stats.late_events =
      retired_late_ + (executor_ ? executor_->late_events() : 0);
  stats.reorder_buffered = executor_ ? executor_->reorder_buffered() : 0;
  stats.reorder_buffer_peak = std::max(
      retired_reorder_peak_,
      executor_ ? executor_->reorder_buffer_peak() : 0);
  if (options_.max_delay == 0) {
    stats.current_watermark = watermark_;
  } else {
    stats.current_watermark =
        executor_ ? executor_->current_watermark() : retired_watermark_;
  }
  if (shared_) {
    stats.shared_cost = shared_->shared_cost;
    stats.original_cost = shared_->original_cost;
    stats.independent_cost = shared_->independent_cost;
    stats.predicted_boost = shared_->PredictedBoost();
    stats.predicted_savings = shared_->PredictedSavings();
    stats.predicted_shard_boost =
        shared_->PredictedShardBoost(options_.num_shards, options_.num_keys);
    stats.sharded_cost =
        shared_->ShardedCost(options_.num_shards, options_.num_keys);
  }
  return stats;
}

StreamSession::SessionMetrics StreamSession::Metrics() const {
  session_role_.AssertHeld();  // Public entry: caller thread only.
  SessionMetrics metrics;
  metrics.stats = BuildStats();

  // Per-operator breakdown of the current topology. The executor getters
  // quiesce, so the counts are exact at this instant; they are cumulative
  // across Resize (executor-banked retired tallies) but restart at each
  // replan (new plan, new operators).
  uint64_t closes_total = retired_closes_total_;
  uint64_t finalizes_total = retired_finalizes_total_;
  if (executor_ && shared_) {
    const std::vector<uint64_t> ops = executor_->PerOperatorOps();
    const std::vector<uint64_t> closes = executor_->PerOperatorCloses();
    const std::vector<uint64_t> finalizes = executor_->PerOperatorFinalizes();
    metrics.operators.reserve(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      OperatorMetrics op;
      op.operator_id = static_cast<int>(i);
      op.label = shared_->plan.op(static_cast<int>(i)).label;
      op.accumulate_ops = ops[i];
      op.closed_instances = i < closes.size() ? closes[i] : 0;
      op.finalized_results = i < finalizes.size() ? finalizes[i] : 0;
      closes_total += op.closed_instances;
      finalizes_total += op.finalized_results;
      metrics.operators.push_back(std::move(op));
    }
  }
  metrics.closed_instances_total = closes_total;
  metrics.finalized_results_total = finalizes_total;

  // Publish the instantaneous session view into the registry, so the
  // snapshot below (and any Prometheus/JSON render of it) carries the
  // session gauges alongside the hot-path counters and histograms.
  live_queries_gauge_->Set(static_cast<double>(metrics.stats.live_queries));
  num_shards_gauge_->Set(static_cast<double>(metrics.stats.num_shards));
  ring_occupancy_gauge_->Set(metrics.stats.ring_occupancy);
  reorder_buffered_gauge_->Set(
      static_cast<double>(metrics.stats.reorder_buffered));
  accumulate_ops_gauge_->Set(static_cast<double>(metrics.stats.lifetime_ops));
  closed_total_gauge_->Set(static_cast<double>(closes_total));
  finalized_total_gauge_->Set(static_cast<double>(finalizes_total));

  metrics.telemetry = metrics_.Snapshot();
  return metrics;
}

}  // namespace fw
