#ifndef FW_SESSION_SESSION_H_
#define FW_SESSION_SESSION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string_view>
#include <vector>

#include "adaptive/adaptive.h"
#include "adaptive/resize_policy.h"
#include "common/mutex.h"
#include "common/status.h"
#include "cost/runtime_profile.h"
#include "durability/options.h"
#include "exec/columns.h"
#include "exec/event.h"
#include "multi/multi_query.h"
#include "query/builder.h"
#include "query/query.h"
#include "runtime/sharded_executor.h"
#include "telemetry/metrics.h"

namespace fw {

namespace durability {
class DurabilityManager;
struct SnapshotContents;
struct WalRecord;
}  // namespace durability

/// Stable handle for one query registered with a StreamSession. Ids are
/// assigned once and never reused within a session.
using QueryId = uint64_t;

/// The library's front door for the paper's motivating scenario (§I): a
/// long-lived population of multi-window aggregate queries over one event
/// stream, arriving and departing while the stream flows. A StreamSession
/// owns the whole pipeline — parse/build, joint (multi-query) cost-based
/// optimization, shared-plan execution, and per-query result routing — so
/// callers never wire ParseQuery/MultiQueryOptimizer/PlanExecutor/
/// RoutingSink by hand:
///
///   StreamSession session({.num_keys = 4});
///   QueryId dash = session
///                      .AddQuery(Query().Min("temp").From("telemetry")
///                                    .PerKey("device").Tumbling(20),
///                                [](const WindowResult& r) { ... })
///                      .value();
///   session.Push({.timestamp = 3, .key = 1, .value = 21.5});
///   session.RemoveQuery(dash);
///
/// ## Dynamic query add/remove and state-preserving re-optimization
///
/// AddQuery/RemoveQuery may be called on a live session, mid-stream. Each
/// call re-runs the shared-plan optimizer over the updated query set
/// (MultiQueryOptimizer::Reoptimize) and swaps in a new executor. Operator
/// state migrates across the swap by *lineage* (the operator's provider
/// window chain, plan/OperatorLineages):
///
///  * operators whose lineage survives the replan keep their in-flight
///    partial aggregates and cursors exactly (their provider chain is
///    unchanged, so resumption is exact: every later result equals what an
///    unchanged session — or a fresh session fed the whole stream — would
///    emit);
///  * operators that are new, or whose provider chain changed, start cold:
///    their window instances already open at the swap only reflect
///    post-swap events, so results for windows straddling the swap are
///    partial. Windows opening at or after the swap are exact.
///
/// Removing a query immediately drops its subscriptions; its in-flight
/// windows never emit. State of operators still serving other queries is
/// retained. All queries of a session must read the same source stream and
/// use the same shareable (non-holistic) aggregate — the IoT-dashboard
/// shape the multi-query optimizer supports; holistic queries (MEDIAN) are
/// rejected at AddQuery.
///
/// ## Sharded parallel execution
///
/// With Options::num_shards > 1 the session executes its shared plan on
/// the sharded runtime (runtime/ShardedExecutor): events are
/// hash-partitioned by grouping key across worker threads, each running a
/// private engine over its key slice, and results are merged back — on
/// the caller's thread, so callbacks never run concurrently — in
/// deterministic (window end, start, operator, key) order. The delivered
/// result multiset is bitwise identical to a num_shards = 1 session
/// across churn, replans, and Finish; only delivery timing changes
/// (buffered results arrive at drain points: periodically, and on every
/// replan and Finish — stats reads synchronize the counters but deliver
/// nothing). Replans stay state-preserving: shard checkpoints
/// merge into the global view, migrate by lineage as below, and split
/// back across shards. The shard count is capped at num_keys — a keyless
/// session cannot parallelize — and the default (1) runs the
/// single-threaded engine inline, exactly as before.
///
/// ## Out-of-order ingestion (event time under bounded lateness)
///
/// By default sessions are strict: Push rejects any timestamp regression.
/// Real traces are disordered, so Options::max_delay > 0 switches the
/// session to bounded-lateness event time (DESIGN.md §9): events may
/// arrive up to max_delay time units behind the newest timestamp seen.
/// They are buffered in per-shard reorder stages and released into the
/// engines in (timestamp, arrival) order as the watermark — newest
/// timestamp minus max_delay — passes them; Finish drains the buffers
/// before finalizing any window. A stream whose disorder stays within
/// max_delay therefore produces results identical to the same stream
/// sorted (bitwise, when timestamps are distinct), at any shard count.
///
/// An event older than the watermark on arrival is *late*: it is never
/// aggregated, and Options::late_policy decides whether it is counted and
/// dropped or also handed to Options::late_callback (a side output, on
/// the Push thread). SessionStats reports late_events, the reorder-buffer
/// depth and peak, and the current watermark. Replans checkpoint the
/// in-flight buffers with the operator state, so churn under disorder
/// stays exact; a session that goes idle (last query removed) discards
/// buffered events with the pipeline — they had no subscribers — and
/// restarts its event-time clock on revival.
///
/// ## Online elasticity (live shard re-scaling)
///
/// Resize(n) re-scales a live sharded session in place (DESIGN.md §10):
/// the executor quiesces, merges every shard's checkpoint into the global
/// view (window state, in-flight reorder buffers, the event-time clock,
/// and all cumulative counters), and re-splits it across the new shard
/// count. The handoff is *exact*: from the resize point onward the
/// session emits bitwise what a session that ran at the target width from
/// the start would emit — no result is dropped, duplicated, or reordered,
/// and churn replans and bounded-lateness disorder keep working across
/// the swap. Options::auto_resize turns on a load monitor that samples
/// the hand-off ring occupancy every few thousand events and re-scales
/// within [min_shards, max_shards] automatically; because resizes are
/// exact, *when* they trigger never affects results.
///
/// Sessions are push-based and driven from one caller thread; with
/// max_delay = 0 events must arrive in non-decreasing timestamp order
/// across the whole session lifetime. That single-caller-thread contract
/// is annotated (DESIGN.md §12): all session state is FW_GUARDED_BY the
/// caller thread's role, so under Clang `-Wthread-safety` any code path
/// that touches it without being pinned to that thread fails to compile.
class StreamSession {
 public:
  /// Per-query result delivery. Results carry the window interval, group
  /// key, and final value; operator_id is rewritten to the window's
  /// position within the query's own window set (0-based), exactly like
  /// RoutingSink.
  using ResultCallback = std::function<void(const WindowResult&)>;

  /// Side output for late events (see LatePolicy::kSideOutput): called on
  /// the Push thread, in arrival order.
  using LateEventCallback = std::function<void(const Event&)>;

  /// What happens to an event that arrives behind the watermark. Only
  /// reachable with Options::max_delay > 0 — a strict-order session
  /// rejects out-of-order events at Push instead.
  enum class LatePolicy {
    kDrop,        // Count in SessionStats::late_events and discard.
    kSideOutput,  // Count, then hand to Options::late_callback.
  };

  /// Load-driven shard re-scaling (see the class comment). The monitor
  /// runs on the Push thread: every check_interval accepted events it
  /// samples the executor and asks the blended ResizePolicy
  /// (adaptive/resize_policy.h) for a target width. Three signals blend
  /// per sample:
  ///
  ///  * worst-shard SPSC ring occupancy (in-flight batches / ring
  ///    capacity) — the legacy signal: scale up at scale_up_occupancy,
  ///    count toward a scale-down at scale_down_occupancy;
  ///  * the observed event rate η̂ (events per event-time unit, EWMA —
  ///    AdaptiveOptions::rate_alpha), enabled by a non-zero
  ///    target_rate_per_shard: scale up when η̂ exceeds target × current
  ///    shards, allow a scale-down only when the halved topology would
  ///    still absorb η̂. Event-time based, so the signal replays
  ///    deterministically;
  ///  * batch hand-off p99 over the sampling interval (telemetry
  ///    histogram "executor.batch_handoff_ns"), enabled by a non-zero
  ///    handoff_p99_budget_ns: over budget triggers scale-up and blocks
  ///    scale-downs. Inert when telemetry is compiled out.
  ///
  /// Occupancy alone cannot see load from inline (1-shard) mode — there
  /// are no rings there — so the occupancy-only monitor never scales
  /// below 2 shards. With a rate target configured, the throughput
  /// signal stays measurable at 1 shard, and the monitor can scale down
  /// into inline mode and back out again. Scale-downs need
  /// scale_down_checks consecutive cold samples (hysteresis: scale up
  /// fast, down slowly); any vetoed proposal — width no-op (keyless
  /// plans), predicted-gain rejection (SharedPlan::PredictedResizeGain),
  /// resize failure — resets the streak so a hopeless resize backs off
  /// instead of re-firing every sample. A session whose width lies
  /// outside [min_shards, max_shards] is clamped back into range through
  /// the same guards. Because resizes are exact, *when* they trigger
  /// never affects results; every automatic resize counts in
  /// SessionStats::resize_count, exactly like an explicit Resize.
  struct AutoResizeOptions {
    bool enabled = false;
    uint32_t min_shards = 1;
    uint32_t max_shards = 8;
    /// Accepted events between monitor samples.
    uint64_t check_interval = 8192;
    double scale_up_occupancy = 0.5;
    double scale_down_occupancy = 0.02;
    /// Consecutive low samples required before scaling down (hysteresis:
    /// scale up fast, down slowly).
    int scale_down_checks = 4;
    /// Events per event-time unit one shard is expected to absorb; a
    /// non-zero value turns on the throughput signal (0 keeps the legacy
    /// occupancy-only monitor, which never scales below 2 shards).
    double target_rate_per_shard = 0.0;
    /// Interval hand-off p99 ceiling in nanoseconds; non-zero turns on
    /// the latency signal. Wall-clock based, so it steers only *when*
    /// exact resizes happen — never what the session emits.
    uint64_t handoff_p99_budget_ns = 0;
  };

  /// Runtime-adaptive re-optimization (DESIGN.md §15): the session
  /// estimates the observed event rate η̂ (an EWMA over event time, fed
  /// every check_interval accepted events) and, when it drifts a factor
  /// of reoptimize_ratio away from the η the current shared plan was
  /// costed with, re-runs MultiQueryOptimizer::Reoptimize at η̂ — the
  /// paper's §VI dynamic cost estimates, closed mid-stream. A replan
  /// that keeps the plan structure adopts the new costing in place; one
  /// that changes it (lower rates evict factor windows, higher rates
  /// reinstate them) switches over through a bounded dual-pipeline
  /// crossover that keeps emitted results bitwise identical to a
  /// static-plan session: the outgoing pipeline finishes every window
  /// instance that opened before the cutover while the new pipeline —
  /// result-gated to instances opening at or after it — warms up on the
  /// same events, and the old pipeline retires once the watermark passes
  /// the last straddling instance. Later query churn keeps working (a
  /// churn replan first folds an in-flight crossover back into one
  /// pipeline, exactly). Drift replans count in
  /// SessionStats::drift_replans, never in `replans`.
  struct AdaptiveOptions {
    bool enabled = false;
    /// EWMA weight of the newest rate observation, in (0, 1]. The one
    /// rate estimator is shared with the auto-resize throughput signal.
    double rate_alpha = 0.3;
    /// Accepted events between drift checks.
    uint64_t check_interval = 8192;
    /// Re-optimize when η̂ and the planned η differ by at least this
    /// factor, in either direction.
    double reoptimize_ratio = 2.0;
    /// Replan cooldown in accepted events — bounds replan churn (and the
    /// cost of crossover double-processing) while the estimate settles.
    /// Also gates the *first* drift replan, giving the EWMA a warm-up.
    uint64_t min_events_between_replans = 65536;
  };

  struct Options {
    /// Size of the grouping-key space; events must use keys below this.
    uint32_t num_keys = 1;
    /// Key-partitioned execution shards (see the class comment). 1 (the
    /// default) runs the single-threaded engine inline — today's path —
    /// while k > 1 spawns min(k, num_keys) worker threads.
    uint32_t num_shards = 1;
    /// Bounded event-time disorder (see the class comment): accept events
    /// arriving up to this many time units behind the newest timestamp
    /// seen. 0 (the default) is strict-order ingestion — today's
    /// behavior, byte for byte.
    TimeT max_delay = 0;
    /// Disposition of late events (max_delay > 0 only).
    LatePolicy late_policy = LatePolicy::kDrop;
    /// Receives each late event under LatePolicy::kSideOutput; null means
    /// late events are only counted.
    LateEventCallback late_callback = nullptr;
    /// Load-driven shard re-scaling; off by default (the shard count
    /// only changes via explicit Resize calls).
    AutoResizeOptions auto_resize = {};
    /// Feedback-driven re-optimization; off by default (the shared plan
    /// only changes via AddQuery/RemoveQuery).
    AdaptiveOptions adaptive = {};
    /// Knobs forwarded to the cost-based optimizer on every (re)plan.
    OptimizerOptions optimizer = {};
    /// Also compute the independently-optimized per-query cost baseline on
    /// every replan (one extra optimizer run per query), so
    /// Stats().predicted_savings is meaningful. Off by default: replan
    /// latency is on the serving path.
    bool track_baseline = false;
    /// Crash durability (DESIGN.md §16); off by default. When enabled,
    /// every admitted event batch and every query add/remove is appended
    /// (write-ahead) to a CRC-framed changelog in `durability.dir`, group-
    /// committed under `durability.fsync_policy`, and a full canonical
    /// snapshot is published every `snapshot_interval_events` admitted
    /// events — truncating the changelog it covers. After a crash,
    /// StreamSession::Recover rebuilds the session from the newest valid
    /// snapshot plus a changelog replay. Durability is fail-stop: the
    /// first append/snapshot error latches, and every later ingest or
    /// churn call returns it instead of letting memory and disk diverge.
    DurabilityOptions durability = {};
  };

  /// Per-query measurements.
  struct QueryStats {
    /// Window results delivered to this query's callback.
    uint64_t results_delivered = 0;
    /// Engine accumulate/merge ops of the shared-plan operators this query
    /// subscribes to — the per-query attribution of PerOperatorOps. An
    /// operator shared by several queries counts fully for each, so the
    /// sum over queries can exceed total ops (that overlap *is* the
    /// sharing).
    uint64_t attributed_ops = 0;
  };

  /// Session-wide measurements.
  ///
  /// Counter lifecycle contract: counters documented as *cumulative*
  /// (events_pushed, events_dropped, replans, lifetime_ops, late_events,
  /// reorder_buffer_peak, resize_count) cover the whole session lifetime
  /// — they never reset and are never double-counted across executor
  /// swaps, whether the swap is a churn replan, a Resize, or an
  /// idle-retire/revive cycle (the regression tests in
  /// tests/elasticity_test.cc pin this). Everything else is either
  /// *instantaneous* (live_queries, reorder_buffered, current_watermark,
  /// ring_occupancy, the cost/boost fields), scoped to the *most recent
  /// replan* (operators_migrated, operators_cold, last_replan_seconds) or
  /// *most recent resize* (last_resize_ns), or scoped to the *current
  /// executor topology* (num_shards, events_per_shard — a resize or
  /// replan restarts the per-shard tallies at the new width, and an idle
  /// session has none).
  struct SessionStats {
    size_t live_queries = 0;
    uint64_t events_pushed = 0;
    /// Events pushed while no query was live (accepted and discarded).
    uint64_t events_dropped = 0;
    /// Number of replans (every successful AddQuery/RemoveQuery is one).
    int replans = 0;
    /// Operator migration tally of the most recent replan.
    int operators_migrated = 0;
    int operators_cold = 0;
    double last_replan_seconds = 0.0;
    /// Engine ops across the session lifetime, including operators retired
    /// by replans.
    uint64_t lifetime_ops = 0;
    /// Model cost of the current shared plan, of the unshared original
    /// plans (the ASA/Flink default), and of the independently-optimized
    /// per-query baseline (0 unless Options::track_baseline).
    double shared_cost = 0.0;
    double original_cost = 0.0;
    double independent_cost = 0.0;
    /// Original cost / shared cost: the predicted speedup over running
    /// every query's original plan.
    double predicted_boost = 1.0;
    /// Independent baseline cost / shared cost (1 when the baseline is
    /// untracked).
    double predicted_savings = 1.0;
    /// Effective shard count: min(num_shards requested, num_keys), >= 1.
    /// Reflects the live executor's width, so it tracks Resize.
    uint32_t num_shards = 1;
    /// Predicted speedup of the sharded shared plan over the unshared
    /// single-threaded originals: predicted_boost x num_shards under the
    /// idealized balance model (SharedPlan::PredictedShardBoost).
    double predicted_shard_boost = 1.0;
    /// Model cost of the current shared plan at the current width
    /// (SharedPlan::ShardedCost — re-evaluated after every resize).
    double sharded_cost = 0.0;
    /// Completed Resize calls (explicit and auto), and the wall-clock
    /// latency of the most recent one.
    uint64_t resize_count = 0;
    uint64_t last_resize_ns = 0;
    /// Observed event rate η̂ (events per event-time unit, EWMA); 0
    /// until the first rate observation — the estimator needs two
    /// monitor samples with advancing event time. Cumulative across
    /// executor swaps (the estimator is session-owned).
    double observed_eta = 0.0;
    /// The η the current shared plan's costs were computed with: the
    /// optimizer assumption at first, the drifted estimate after an
    /// observed-η replan.
    double planned_eta = 1.0;
    /// Drift-triggered re-optimizations (Options::adaptive), cumulative.
    /// Counted separately from `replans`, which stays "every successful
    /// AddQuery/RemoveQuery".
    int drift_replans = 0;
    /// Events delivered into each shard's engine since the current
    /// topology was built (skew observability); empty while idle. Late
    /// events never count; reordered events count on release.
    std::vector<uint64_t> events_per_shard;
    /// Instantaneous worst-shard hand-off backlog in [0, 1] — the signal
    /// auto_resize samples. 0 for inline (1-shard) and idle sessions.
    double ring_occupancy = 0.0;
    /// Events that arrived behind the watermark (max_delay sessions):
    /// counted here — and side-output under LatePolicy::kSideOutput —
    /// but never aggregated. A subset of events_pushed.
    uint64_t late_events = 0;
    /// Events currently held in the reorder buffers, and the lifetime
    /// peak of that depth (bounds the memory cost of disorder).
    uint64_t reorder_buffered = 0;
    uint64_t reorder_buffer_peak = 0;
    /// Event-time watermark: the newest timestamp seen minus max_delay
    /// (with max_delay = 0, simply the newest timestamp pushed).
    /// numeric_limits<TimeT>::min() before the first event.
    TimeT current_watermark = std::numeric_limits<TimeT>::min();
    /// Durability tallies (all 0 unless Options::durability.enabled):
    /// changelog records and bytes appended, fsyncs issued, and snapshots
    /// published — cumulative since the session started (or since
    /// Recover re-attached the changelog).
    uint64_t wal_records = 0;
    uint64_t wal_bytes = 0;
    uint64_t wal_fsyncs = 0;
    uint64_t snapshots_written = 0;
    /// Covered changelog/snapshot files truncation could not delete —
    /// harmless for recovery (replay skips fully covered segments) but a
    /// disk leak worth alerting on.
    uint64_t truncate_failures = 0;
  };

  /// Per-operator observability of the *current* shared plan: identity,
  /// cost (accumulate/merge ops), slice-close rate (window instances
  /// closed), and selectivity (finalized per-key results; 0 for
  /// unexposed factor windows). Ops and close/finalize counts are
  /// cumulative across Resize (the executor banks retired-topology
  /// tallies); a churn replan builds a new plan, so the vector describes
  /// the operators alive since the last replan only — session-lifetime
  /// totals live in SessionMetrics::closed_instances_total.
  struct OperatorMetrics {
    int operator_id = 0;
    std::string label;
    uint64_t accumulate_ops = 0;
    uint64_t closed_instances = 0;
    uint64_t finalized_results = 0;
  };

  /// The structured telemetry snapshot (DESIGN.md §13) — a superset of
  /// Stats(): the same SessionStats view (same lifecycle contracts, same
  /// values), plus the registry snapshot (sharded counters, latency
  /// histograms, trace ring) and the per-operator breakdown. Render
  /// `telemetry` with telemetry/prometheus.h or telemetry/json.h.
  struct SessionMetrics {
    /// False when the library was built -DFW_TELEMETRY=OFF: `stats`,
    /// `operators`, and the *_total counters below stay exact (they come
    /// from the engine's own counters), while `telemetry` comes back
    /// empty.
    bool telemetry_enabled = telemetry::kEnabled;
    SessionStats stats;
    telemetry::MetricsSnapshot telemetry;
    /// Current topology (empty while idle); see OperatorMetrics.
    std::vector<OperatorMetrics> operators;
    /// Session-lifetime window instances closed / results finalized,
    /// including operators retired by replans and idle periods —
    /// cumulative, like SessionStats::lifetime_ops.
    uint64_t closed_instances_total = 0;
    uint64_t finalized_results_total = 0;
  };

  StreamSession();
  explicit StreamSession(const Options& options);
  ~StreamSession();

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  /// Registers a query and replans the shared pipeline. The callback may
  /// be null (results counted but not delivered — useful for throughput
  /// runs). On error the session is unchanged.
  Result<QueryId> AddQuery(const StreamQuery& query,
                           ResultCallback callback = nullptr);
  /// SQL front end (see query/parser.h for the dialect).
  Result<QueryId> AddQuery(std::string_view sql,
                           ResultCallback callback = nullptr);
  /// Fluent front end; forwards QueryBuilder::Build errors.
  Result<QueryId> AddQuery(const QueryBuilder& builder,
                           ResultCallback callback = nullptr);

  /// Unsubscribes a query and replans. In-flight windows of the removed
  /// query never emit; state shared with surviving queries is retained.
  Status RemoveQuery(QueryId id);

  /// Re-scales the session to min(new_num_shards, num_keys) worker
  /// threads (1 = the inline single-threaded engine) with exact state
  /// handoff — see the class comment. Works mid-stream, under disorder,
  /// and interleaved with AddQuery/RemoveQuery; an idle session just
  /// records the width for its next pipeline. Later replans keep the new
  /// width.
  Status Resize(uint32_t new_num_shards);

  /// Pushes one event through the shared plan. With max_delay = 0 events
  /// must be timestamp-ordered and out-of-order events are rejected; with
  /// max_delay > 0 disorder within the bound is reordered and deeper
  /// regressions follow the late policy (always OK). Events pushed while
  /// no query is live are counted and discarded.
  ///
  /// All three ingestion entry points (Push, PushBatch, PushColumns)
  /// share one error contract: a rejection reports the first rejected
  /// event's index within the call and its timestamp, with identical
  /// wording ("ingest stopped at event I (timestamp T): <cause>"), and
  /// every event before that index was applied — callers resume from the
  /// reported index regardless of how they ingest. For Push the index is
  /// always 0.
  Status Push(const Event& event);

  /// Pushes a batch of row-form events; a thin wrapper that transposes
  /// into EventColumns and forwards to PushColumns, so rows and columns
  /// ride one hot path. Stops at the first rejected event under the
  /// shared ingestion error contract (see Push).
  Status PushBatch(const std::vector<Event>& events);

  /// Pushes a columnar (SoA) batch through the shared plan — the
  /// vectorized ingestion path (DESIGN.md §14). Results are bitwise
  /// identical to pushing the same events one at a time in column order,
  /// at any shard count, under disorder, and across mid-stream Resize;
  /// only the work per event shrinks (one shard-partition pass per batch,
  /// per-run batch folds in the operators). Columns must be equal length
  /// (columns.Validate(); nothing is applied on mismatch). Stops at the
  /// first rejected event under the shared ingestion error contract (see
  /// Push): the accepted prefix is applied, the rest is not.
  Status PushColumns(const EventColumns& columns);

  /// Ends the stream: flushes every open window of every live query. The
  /// session is read-only afterwards (Push/AddQuery/RemoveQuery error);
  /// Explain and stats remain available. Idempotent. A durable session
  /// publishes one final snapshot (so recovery of a finished session is a
  /// snapshot load, no replay).
  Status Finish();

  /// Supplies the result callback for each query Recover re-installs —
  /// callbacks are code, so they cannot live in the changelog. Called
  /// once per recovered query with its original id; returning null
  /// leaves that query's results counted but undelivered.
  using CallbackFactory =
      std::function<ResultCallback(QueryId, const StreamQuery&)>;

  /// What Recover hands back: the rebuilt session plus the replay
  /// positions a caller needs to resume its feed — durable_events is the
  /// exact number of events the recovered session has absorbed, so the
  /// producer re-sends from there. Results finalized between the loaded
  /// snapshot and the crash are re-delivered during replay (at-least-
  /// once), with values bitwise identical to the original delivery.
  struct RecoveryInfo {
    std::unique_ptr<StreamSession> session;
    /// Stream position (admitted events) captured by the loaded
    /// snapshot; 0 when recovery started from an empty/absent snapshot.
    uint64_t snapshot_events = 0;
    /// Stream position after changelog replay — where to resume pushing.
    uint64_t durable_events = 0;
    /// Changelog records replayed on top of the snapshot.
    uint64_t replayed_records = 0;
    /// Newer snapshot files that failed validation (torn or corrupt) and
    /// were skipped back over.
    int snapshots_skipped = 0;
    size_t recovered_queries = 0;
  };

  /// Rebuilds a session from the durability dir a crashed (or cleanly
  /// stopped) session wrote: loads the newest *valid* snapshot — torn or
  /// bit-damaged files are detected by CRC and skipped back over — then
  /// replays the changelog suffix. A torn final changelog record (the
  /// crash landed mid-write) marks clean end-of-log; damage anywhere
  /// earlier fails with "recovery stopped at segment S, record R:
  /// <cause>" — the same stop-position contract as the ingestion error
  /// wording. Recovery is idempotent (recovering the same dir twice
  /// yields the same session) and shard-count-portable: `options` may
  /// request a different num_shards than the crashed session ran
  /// (results stay bitwise identical — sharding is output-invariant).
  /// The options fingerprint that *does* shape results (num_keys,
  /// max_delay, late_policy) must match the snapshot, or Recover refuses.
  /// On success the session resumes durable logging into `dir` and
  /// publishes a fresh snapshot (truncating everything it replayed).
  static Result<RecoveryInfo> Recover(
      std::string_view dir, Options options,
      const CallbackFactory& callbacks = nullptr);

  /// Ids of the live queries, in plan (insertion) order.
  std::vector<QueryId> QueryIds() const;

  /// Renders the query, its subscriptions into the shared plan, and the
  /// shared plan itself (plan/printer summary).
  Result<std::string> Explain(QueryId id) const;

  Result<QueryStats> StatsFor(QueryId id) const;
  /// The classic pull-only counter view — now a thin view over the same
  /// state Metrics() reports (both build from one BuildStats helper), so
  /// the cumulative/instantaneous/topology-scoped contracts above stay
  /// pinned by the existing elasticity regression tests.
  SessionStats Stats() const;
  /// The full telemetry snapshot; see SessionMetrics. Publishes the
  /// instantaneous session gauges (ring occupancy, live queries, engine
  /// totals) into the registry first, so the returned snapshot — and any
  /// Prometheus/JSON rendering of it — is self-contained.
  SessionMetrics Metrics() const;

  /// Observed runtime statistics in the cost model's vocabulary
  /// (cost/runtime_profile.h): the measured η̂, per-shard load skew, and
  /// per-operator accumulate/close/finalize counters of the current
  /// topology — the same feedback the drift detector hands back to the
  /// optimizer, exposed for callers costing plans themselves
  /// (CostModel's RuntimeProfile constructor).
  RuntimeProfile Profile() const;

  size_t num_queries() const {
    session_role_.AssertHeld();  // Public entry: caller thread only.
    return queries_.size();
  }
  bool finished() const {
    session_role_.AssertHeld();  // Public entry: caller thread only.
    return finished_;
  }

  /// The current shared plan, or null while no query is live.
  const QueryPlan* shared_plan() const;

 private:
  struct LiveQuery;

  /// Per-query ResultSink bridging RoutingSink to the user callback.
  class CallbackSink : public ResultSink {
   public:
    explicit CallbackSink(LiveQuery* owner) : owner_(owner) {}
    void OnResult(const WindowResult& result) override;

   private:
    LiveQuery* owner_;
  };

  struct LiveQuery {
    QueryId id = 0;
    StreamQuery query;
    ResultCallback callback;
    uint64_t results_delivered = 0;
    CallbackSink sink{this};
  };

  /// Result gate between the executor and the router: forwards only
  /// results whose window *start* falls in [min_start, max_start). Every
  /// live pipeline is built with one (open by default — a gate cannot be
  /// inserted after construction, the executor's sink is fixed); drift
  /// crossovers then narrow the two pipelines to disjoint eras. Defined
  /// in session.cc.
  class StartGateSink;

  /// The outgoing pipeline of an in-flight structural drift replan: it
  /// keeps ingesting every event (dual-push) and owns all window
  /// instances that opened before the cutover, while the gated new
  /// pipeline in the live slots owns instances from the cutover on.
  /// Retired — Finish, bank counters, destroy — once the watermark
  /// passes retire_at, the end of the last pre-cutover instance.
  struct DriftCrossover;

  /// Re-optimizes over `live`, migrates executor state by lineage, and
  /// commits the new pipeline. On error the session is unchanged. An
  /// in-flight crossover is first folded back into one pipeline
  /// (CancelCrossover), so churn and drift compose.
  Status Rebuild(const std::vector<LiveQuery*>& live)
      FW_REQUIRES(session_role_);

  /// One auto-resize policy step (see AutoResizeOptions), sampled at the
  /// monitor cadence from Push/PushColumns while a pipeline is live.
  /// `events_at_sample`/`wm_at_sample` pin the sample to a stream
  /// position: the scalar path passes its running counters, the columnar
  /// path the mid-batch values where the cadence crossed — so both paths
  /// feed the rate estimator identical observations.
  void AutoResizeCheck(uint64_t events_at_sample, TimeT wm_at_sample)
      FW_REQUIRES(session_role_);

  /// Feeds the shared rate estimator the (events, event-time) delta
  /// since the previous observation, and publishes the rate gauges.
  void ObserveRate(uint64_t events_at_sample, TimeT wm_at_sample)
      FW_REQUIRES(session_role_);

  /// One drift-detector step (see AdaptiveOptions): observe the rate,
  /// compare η̂ against the planned η, start a drift replan past the
  /// threshold (and cooldown). Skipped while a crossover is in flight.
  void DriftCheck(uint64_t events_at_sample, TimeT wm_at_sample)
      FW_REQUIRES(session_role_);

  /// Re-runs the optimizer at η̂. Structure kept: adopt the new costing
  /// in place. Structure changed: start a dual-pipeline crossover with
  /// cutover wm_at_sample + 1 (events through wm_at_sample were already
  /// pushed to the old pipeline only).
  void StartDriftReplan(double eta_hat, TimeT wm_at_sample)
      FW_REQUIRES(session_role_);

  /// Completes the crossover once every pre-cutover instance is beyond
  /// late arrivals: release watermark (wm_now, or wm_now - max_delay
  /// under disorder) at or past retire_at. Completing later than the
  /// threshold is always output-identical — pre-cutover instances have
  /// all closed or can only be flushed with their final contents — so
  /// the columnar path may check at segment granularity.
  void MaybeCompleteCrossover(TimeT wm_now) FW_REQUIRES(session_role_);
  void CompleteCrossover() FW_REQUIRES(session_role_);

  /// Folds an in-flight crossover back into one pipeline for a churn
  /// replan: flushes the new executor's canonical closes (its gated era
  /// was already emitted by it alone), banks its counters, and restores
  /// the old pipeline — which saw the whole stream, so its state is
  /// exactly a single static pipeline's — into the live slots.
  Status CancelCrossover() FW_REQUIRES(session_role_);

  /// Position of `id` in queries_, or queries_.size() when unknown.
  size_t FindQuery(QueryId id) const FW_REQUIRES(session_role_);

  Status CheckMutable() const FW_REQUIRES(session_role_);

  /// Durability hooks (inert unless Options::durability.enabled). The
  /// append helpers run write-ahead — before the events/churn mutate any
  /// session state — and latch the first failure into durability_error_.
  Status CheckDurable() FW_REQUIRES(session_role_);
  Status DurableAppend(const Event& event) FW_REQUIRES(session_role_);
  Status DurableAppendColumns(const EventColumns& columns, size_t accepted)
      FW_REQUIRES(session_role_);
  /// Publishes a snapshot if one is due; called between batches, never
  /// while a drift crossover is in flight (dual-pipeline state is
  /// transient — the next quiescent point snapshots instead).
  void MaybeSnapshot() FW_REQUIRES(session_role_);
  Status WriteDurableSnapshot() FW_REQUIRES(session_role_);
  /// Fills `out` with the canonical session image WriteDurableSnapshot
  /// publishes (counters, query set, merged executor checkpoint) —
  /// everything but covered_seq. Split out so Recover can publish its
  /// snapshot *before* attaching a DurabilityManager: the file must be
  /// durable before a new changelog segment demotes the crashed run's
  /// torn newest segment.
  Status BuildDurableSnapshot(durability::SnapshotContents* out)
      FW_REQUIRES(session_role_);
  /// Applies one replayed changelog record during Recover.
  Status ReplayRecord(const durability::WalRecord& record,
                      const CallbackFactory& callbacks)
      FW_REQUIRES(session_role_);

  /// The one SessionStats builder both Stats() and Metrics() share.
  SessionStats BuildStats() const FW_REQUIRES(session_role_);

  /// The caller thread's role: sessions are driven from one thread (see
  /// the class comment), and every member below is owned by it. Public
  /// entry points assert the role; private helpers require it.
  ThreadRole session_role_;

  Options options_ FW_GUARDED_BY(session_role_);

  /// Session-owned metric namespace (DESIGN.md §13). Declared before the
  /// executor members below so it outlives them (members destroy in
  /// reverse order): executors hold handles into it, and their workers
  /// may record up to the join inside the executor's destructor. The
  /// registry is internally synchronized, and the handles are resolved
  /// once here — never per event — so they carry no guard.
  telemetry::MetricsRegistry metrics_;
  /// Event-time lag of each accepted event behind the newest timestamp
  /// seen (in event-time units): 0 for in-order arrivals, the disorder
  /// distribution otherwise; late events land past max_delay.
  telemetry::Histogram* const watermark_lag_hist_;
  /// Accepted events per PushBatch/PushColumns call (the ingestion batch
  /// size distribution — how much amortization the columnar path gets).
  /// Per-event Push does not record here.
  telemetry::Histogram* const push_batch_size_hist_;
  telemetry::Counter* const events_pushed_counter_;
  telemetry::Counter* const events_dropped_counter_;
  telemetry::Counter* const replans_counter_;
  telemetry::Counter* const resizes_counter_;
  /// Instantaneous gauges, published by Metrics()/AutoResizeCheck and
  /// zeroed on idle-retire and Finish (a retired pipeline has no rings —
  /// the gauge must not report the last live sample forever).
  telemetry::Gauge* const ring_occupancy_gauge_;
  telemetry::Gauge* const live_queries_gauge_;
  telemetry::Gauge* const num_shards_gauge_;
  telemetry::Gauge* const reorder_buffered_gauge_;
  /// Engine totals published at snapshot time (the engine layer keeps
  /// plain counters; see OperatorMetrics).
  telemetry::Gauge* const accumulate_ops_gauge_;
  telemetry::Gauge* const closed_total_gauge_;
  telemetry::Gauge* const finalized_total_gauge_;
  /// Runtime-adaptive loop: drift replans, the observed η̂ gauge, and the
  /// wall-clock events/sec gauge (export-only — every decision the loop
  /// makes reads the deterministic event-time rate instead).
  telemetry::Counter* const drift_replans_counter_;
  telemetry::Gauge* const observed_eta_gauge_;
  telemetry::Gauge* const throughput_eps_gauge_;
  /// The executors' hand-off latency histogram ("executor.batch_handoff_
  /// ns" — registry handles are name-stable, so this is the same object
  /// every executor records into), read by the monitor's latency signal.
  telemetry::Histogram* const handoff_hist_;

  QueryId next_id_ FW_GUARDED_BY(session_role_) = 1;
  /// Plan order.
  std::vector<std::unique_ptr<LiveQuery>> queries_
      FW_GUARDED_BY(session_role_);

  /// Adapter handing late events to Options::late_callback; wired as the
  /// executor's side-output sink, so it must outlive every executor.
  std::unique_ptr<EventConsumer> late_sink_ FW_GUARDED_BY(session_role_);

  /// Current pipeline; all null while no query is live. The executor
  /// references the gate, the gate the router, the router the queries'
  /// sinks — members declare in dependency order so destruction (reverse
  /// order) tears down referencers first.
  std::unique_ptr<MultiQueryOptimizer::SharedPlan> shared_
      FW_GUARDED_BY(session_role_);
  std::unique_ptr<RoutingSink> router_ FW_GUARDED_BY(session_role_);
  std::unique_ptr<StartGateSink> gate_ FW_GUARDED_BY(session_role_);
  std::unique_ptr<ShardedExecutor> executor_ FW_GUARDED_BY(session_role_);
  /// Of the current plan's operators.
  std::vector<std::string> lineages_ FW_GUARDED_BY(session_role_);

  /// In-flight structural drift replan (see DriftCrossover); null almost
  /// always. Declared after queries_ and late_sink_ — its router and
  /// executor reference them.
  std::unique_ptr<DriftCrossover> cross_ FW_GUARDED_BY(session_role_);

  bool finished_ FW_GUARDED_BY(session_role_) = false;
  /// Newest timestamp accepted; strict (max_delay = 0) sessions reject
  /// events behind it.
  TimeT watermark_ FW_GUARDED_BY(session_role_) =
      std::numeric_limits<TimeT>::min();
  uint64_t events_pushed_ FW_GUARDED_BY(session_role_) = 0;
  uint64_t events_dropped_ FW_GUARDED_BY(session_role_) = 0;
  /// Ops of operators dropped by past replans (their counters left the
  /// executor with them).
  uint64_t retired_ops_ FW_GUARDED_BY(session_role_) = 0;
  /// Reorder-stage accounting of pipelines retired by idle periods (live
  /// replans carry theirs through the checkpoint instead).
  uint64_t retired_late_ FW_GUARDED_BY(session_role_) = 0;
  uint64_t retired_reorder_peak_ FW_GUARDED_BY(session_role_) = 0;
  /// Window-close / finalize tallies of operators retired by replans and
  /// idle periods (the executor banks its own across Resize); see
  /// SessionMetrics::closed_instances_total.
  uint64_t retired_closes_total_ FW_GUARDED_BY(session_role_) = 0;
  uint64_t retired_finalizes_total_ FW_GUARDED_BY(session_role_) = 0;
  TimeT retired_watermark_ FW_GUARDED_BY(session_role_) =
      std::numeric_limits<TimeT>::min();
  int replans_ FW_GUARDED_BY(session_role_) = 0;
  int last_migrated_ FW_GUARDED_BY(session_role_) = 0;
  int last_cold_ FW_GUARDED_BY(session_role_) = 0;
  double last_replan_seconds_ FW_GUARDED_BY(session_role_) = 0.0;
  uint64_t resize_count_ FW_GUARDED_BY(session_role_) = 0;
  uint64_t last_resize_ns_ FW_GUARDED_BY(session_role_) = 0;
  /// Auto-resize monitor: accepted events since the last sample, and the
  /// blended decision policy (which owns the scale-down hysteresis —
  /// including the reset-on-veto backoff).
  uint64_t events_since_resize_check_ FW_GUARDED_BY(session_role_) = 0;
  ResizePolicy resize_policy_ FW_GUARDED_BY(session_role_);

  /// Shared observed-rate estimator (η̂): one EWMA feeds both the
  /// auto-resize throughput signal and the drift detector, observed as
  /// (events, event-time) deltas at whichever monitor samples next.
  RateEstimator rate_ FW_GUARDED_BY(session_role_);
  bool rate_seeded_ FW_GUARDED_BY(session_role_) = false;
  uint64_t rate_last_events_ FW_GUARDED_BY(session_role_) = 0;
  TimeT rate_last_wm_ FW_GUARDED_BY(session_role_) = 0;
  /// Wall-clock timestamp of the previous rate observation, for the
  /// events/sec gauge (telemetry-only; decisions use event time).
  uint64_t rate_last_ns_ FW_GUARDED_BY(session_role_) = 0;

  /// Drift detector state: η the current plan is costed at, accepted
  /// events since the last check, the stream position of the last drift
  /// replan (cooldown), and the cumulative replan count.
  double planned_eta_ FW_GUARDED_BY(session_role_) = 1.0;
  uint64_t events_since_drift_check_ FW_GUARDED_BY(session_role_) = 0;
  uint64_t last_drift_replan_events_ FW_GUARDED_BY(session_role_) = 0;
  int drift_replans_ FW_GUARDED_BY(session_role_) = 0;

  /// Previous "executor.batch_handoff_ns" snapshot: the latency signal
  /// reads the histogram's per-interval delta, not lifetime percentiles.
  telemetry::HistogramSnapshot last_handoff_snap_
      FW_GUARDED_BY(session_role_);

  /// Durability manager (null unless Options::durability.enabled) and
  /// the sticky first durability failure: once an append or snapshot
  /// errors, the session fail-stops — ingest and churn return this
  /// status rather than letting memory run ahead of the log.
  std::unique_ptr<durability::DurabilityManager> durability_
      FW_GUARDED_BY(session_role_);
  Status durability_error_ FW_GUARDED_BY(session_role_);
  /// Reusable single-event columns for the scalar Push append (keeps the
  /// per-event WAL encode allocation-free once warm).
  EventColumns durable_scratch_ FW_GUARDED_BY(session_role_);
};

}  // namespace fw

#endif  // FW_SESSION_SESSION_H_
