#ifndef FW_COMMON_MUTEX_H_
#define FW_COMMON_MUTEX_H_

#include <mutex>  // fw-lint: allow(raw-mutex) — the one wrapping site.

#include "common/annotations.h"

namespace fw {

/// The project's mutex: std::mutex carrying Clang Thread Safety
/// annotations, so lock discipline is checked at compile time under
/// `-Wthread-safety` (see common/annotations.h and DESIGN.md §12).
/// Use this — never raw std::mutex, which the analysis cannot see and
/// fw_lint's raw-mutex rule rejects — and declare the state it protects
/// with FW_GUARDED_BY(mu_).
class FW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FW_ACQUIRE() { mu_.lock(); }
  void Unlock() FW_RELEASE() { mu_.unlock(); }
  bool TryLock() FW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;  // fw-lint: allow(raw-mutex) — the one wrapping site.
};

/// RAII lock for fw::Mutex (the std::lock_guard of this codebase, with
/// the scoped-capability annotation the analysis needs to track it).
class FW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) FW_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() FW_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// A virtual capability standing for "executing on a particular thread" —
/// the annotation vocabulary for state that is not mutex-guarded but
/// *thread-owned*, which is how almost all of this runtime synchronizes
/// (DESIGN.md §12). Declare one role per owning context (the session
/// thread, a shard's worker thread), guard the owned members with
/// FW_GUARDED_BY(role), and mark internal helpers FW_REQUIRES(role).
///
/// A role is never "locked"; instead, code asserts it:
///
///  * an entry point that the threading contract pins to the owning
///    thread (ShardedExecutor::Push, the worker loop) calls AssertHeld()
///    first, turning the documented contract into the analysis fact that
///    checks every guarded access downstream;
///  * a handoff site where ownership transfers dynamically calls
///    AssertHeld() with a comment naming the happens-before edge that
///    makes it true (a ring quiesce, a thread join, "the worker does not
///    exist yet" during topology build).
///
/// The assertion is purely compile-time — an empty inline function at
/// runtime — so it documents and checks, but cannot *detect* a violated
/// contract the way a contended mutex would; the TSan CI leg remains the
/// dynamic backstop.
class FW_CAPABILITY("thread role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  /// Declares that the calling context runs on this role's thread (or has
  /// exclusive access via a happens-before edge — comment which).
  void AssertHeld() const FW_ASSERT_CAPABILITY(this) {}
};

}  // namespace fw

#endif  // FW_COMMON_MUTEX_H_
