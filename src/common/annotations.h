#ifndef FW_COMMON_ANNOTATIONS_H_
#define FW_COMMON_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (DESIGN.md §12).
///
/// These macros attach compile-time lock-discipline contracts to types,
/// data members, and functions: which capability (a mutex, or a thread
/// role) guards which state, and which functions require, acquire, or
/// release it. Under Clang, `-Wthread-safety` (always on for Clang builds,
/// promoted to an error by FW_WERROR — the CI static-analysis job) rejects
/// any access that violates a contract; under other compilers every macro
/// expands to nothing, so the annotations cost nothing and constrain
/// nothing at runtime anywhere.
///
/// The vocabulary follows the Clang documentation's canonical mutex.h
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed FW_
/// to keep the project's macro namespace. The annotated primitives that
/// carry these attributes — fw::Mutex, fw::MutexLock, fw::ThreadRole —
/// live in common/mutex.h; annotate with *those*, never with raw
/// std::mutex (fw_lint's raw-mutex rule enforces this).

#if defined(__clang__) && !defined(SWIG)
#define FW_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define FW_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Declares that a type is a capability (lockable): fw::Mutex, or a
/// fw::ThreadRole standing for "running on thread X". The string names
/// the capability kind in diagnostics.
#define FW_CAPABILITY(x) FW_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability (fw::MutexLock).
#define FW_SCOPED_CAPABILITY FW_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// The data member is protected by the given capability: reads require it
/// held (at least shared), writes require it held exclusively.
#define FW_GUARDED_BY(x) FW_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// The data *pointed to* by this pointer member is protected by the given
/// capability (the pointer itself is not).
#define FW_PT_GUARDED_BY(x) FW_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// The function may only be called while holding the capability
/// exclusively (it does not acquire it).
#define FW_REQUIRES(...) \
  FW_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Shared (reader) form of FW_REQUIRES.
#define FW_REQUIRES_SHARED(...) \
  FW_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define FW_ACQUIRE(...) \
  FW_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// The function releases a capability the caller held.
#define FW_RELEASE(...) \
  FW_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// The function acquires the capability only when returning the given
/// value (try-lock idiom).
#define FW_TRY_ACQUIRE(...) \
  FW_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// The function may not be called while holding the capability
/// (deadlock-prevention contract for functions that acquire it).
#define FW_EXCLUDES(...) \
  FW_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability *is* held at this point because of a
/// fact established dynamically, outside the lexical lock structure — the
/// project's sanctioned alternative to turning the analysis off. Every
/// call site must carry a comment naming the happens-before edge that
/// justifies it (a quiesce, a thread join, "the worker does not exist
/// yet"). See fw::ThreadRole.
#define FW_ASSERT_CAPABILITY(x) \
  FW_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// The function returns a reference to a capability-protected object.
#define FW_RETURN_CAPABILITY(x) \
  FW_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Budgeted — the
/// acceptance bar for this codebase is at most two, each with a written
/// justification. Prefer FW_ASSERT_CAPABILITY, which keeps the rest of
/// the function checked.
#define FW_NO_THREAD_SAFETY_ANALYSIS \
  FW_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // FW_COMMON_ANNOTATIONS_H_
