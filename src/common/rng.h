#ifndef FW_COMMON_RNG_H_
#define FW_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace fw {

/// Deterministic random source used by every generator in the library so
/// experiments are reproducible run-to-run. Thin wrapper over mt19937_64
/// with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    std::uniform_int_distribution<uint64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal draw.
  double Gaussian() {
    std::normal_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Picks a uniformly random element of a non-empty container.
  template <typename Container>
  const typename Container::value_type& Pick(const Container& c) {
    return c[Uniform(0, c.size() - 1)];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fw

#endif  // FW_COMMON_RNG_H_
