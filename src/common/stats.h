#ifndef FW_COMMON_STATS_H_
#define FW_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace fw {

/// Arithmetic mean of a non-empty sample.
double Mean(const std::vector<double>& xs);

/// Population standard deviation of a non-empty sample.
double StdDev(const std::vector<double>& xs);

/// Maximum of a non-empty sample.
double Max(const std::vector<double>& xs);

/// Minimum of a non-empty sample.
double Min(const std::vector<double>& xs);

/// Pearson correlation coefficient of two equal-length samples with at
/// least two points. Returns 0 when either side has zero variance.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Least-squares slope/intercept fit of y on x (same preconditions as
/// PearsonCorrelation). Used for the Fig. 19 best-fit line.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
};
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace fw

#endif  // FW_COMMON_STATS_H_
