#ifndef FW_COMMON_LOGGING_H_
#define FW_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace fw {
namespace internal_logging {

/// Collects a fatal message via stream syntax and aborts on destruction.
/// Used only by the FW_CHECK family below; never instantiate directly.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " Check failed: " << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    const std::string message = stream_.str();
    std::fprintf(stderr, "%s\n", message.c_str());
    std::fflush(stderr);
    std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed message when a check passes. The `(void)0` idiom
// keeps `FW_CHECK(x) << "msg";` a single statement in all contexts.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace fw

/// FW_CHECK(cond) aborts with a diagnostic when `cond` is false. Additional
/// context can be streamed: FW_CHECK(a < b) << "a=" << a;
#define FW_CHECK(condition)                                                  \
  (condition) ? (void)0                                                      \
              : ::fw::internal_logging::Voidify() &                          \
                    ::fw::internal_logging::FatalMessage(__FILE__, __LINE__, \
                                                         #condition)         \
                        .stream()

#define FW_CHECK_EQ(a, b) FW_CHECK((a) == (b))
#define FW_CHECK_NE(a, b) FW_CHECK((a) != (b))
#define FW_CHECK_LT(a, b) FW_CHECK((a) < (b))
#define FW_CHECK_LE(a, b) FW_CHECK((a) <= (b))
#define FW_CHECK_GT(a, b) FW_CHECK((a) > (b))
#define FW_CHECK_GE(a, b) FW_CHECK((a) >= (b))

namespace fw {
namespace internal_logging {

// Binds looser than << so the whole streamed expression is evaluated first,
// then discarded into void; makes FW_CHECK usable in expression position.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace fw

#endif  // FW_COMMON_LOGGING_H_
