#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fw {

double Mean(const std::vector<double>& xs) {
  FW_CHECK(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  FW_CHECK(!xs.empty());
  double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

double Max(const std::vector<double>& xs) {
  FW_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double Min(const std::vector<double>& xs) {
  FW_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  FW_CHECK_EQ(xs.size(), ys.size());
  FW_CHECK_GE(xs.size(), 2u);
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit FitLine(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  FW_CHECK_EQ(xs.size(), ys.size());
  FW_CHECK_GE(xs.size(), 2u);
  double mx = Mean(xs);
  double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
  }
  LinearFit fit;
  fit.slope = sxx == 0.0 ? 0.0 : sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

}  // namespace fw
