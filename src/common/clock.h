#ifndef FW_COMMON_CLOCK_H_
#define FW_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace fw {

/// The single sanctioned monotonic-time shim (DESIGN.md §13). Every time
/// read in src/ flows through here; fw_lint's wall-clock rule rejects
/// direct std::chrono::steady_clock (and every wall-clock source) at any
/// other call site. Two invariants hang off that funnel:
///
///  * determinism — time feeds *measurements only* (latencies, trace
///    timestamps, replan durations), never results, watermarks, or
///    checkpoints, and one choke point is auditable where thirty
///    scattered now() calls are not;
///  * observability overhead — the telemetry layer stamps batches and
///    trace events through this header, so "how often does the runtime
///    read the clock" is answerable by grepping one symbol.
///
/// steady_clock is monotonic (never jumps backward on NTP adjustments)
/// but its epoch is arbitrary: values are only meaningful as differences
/// within one process, and must never be persisted or compared across
/// runs.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A started stopwatch over MonotonicNanos — the idiom for the "measure
/// one span" call sites (replans, resizes, bench loops).
class MonotonicTimer {
 public:
  MonotonicTimer() : start_ns_(MonotonicNanos()) {}

  uint64_t ElapsedNanos() const { return MonotonicNanos() - start_ns_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  uint64_t start_ns_;
};

}  // namespace fw

#endif  // FW_COMMON_CLOCK_H_
