#ifndef FW_COMMON_STATUS_H_
#define FW_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace fw {

/// Error categories used across the library. Mirrors the usual database-
/// library convention (Arrow/RocksDB style) of status-based error handling
/// instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result carrying a code and message. Cheap to copy on
/// the success path (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored result is a checked fatal error.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    FW_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Returns the value; fatal if this holds an error.
  const T& value() const& {
    FW_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    FW_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    FW_CHECK(ok()) << "Result::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ present.
};

/// Propagates an error status from an expression that yields a Status.
#define FW_RETURN_IF_ERROR(expr)             \
  do {                                       \
    ::fw::Status fw_status_ = (expr);        \
    if (!fw_status_.ok()) return fw_status_; \
  } while (0)

}  // namespace fw

#endif  // FW_COMMON_STATUS_H_
