#ifndef FW_COMMON_MATH_UTIL_H_
#define FW_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace fw {

/// Greatest common divisor of two non-negative integers (Euclid).
/// Gcd(0, b) == b and Gcd(a, 0) == a.
uint64_t Gcd(uint64_t a, uint64_t b);

/// Gcd over a non-empty list.
uint64_t Gcd(const std::vector<uint64_t>& values);

/// Least common multiple, or nullopt on 64-bit overflow. Lcm(0, x) == 0.
std::optional<uint64_t> CheckedLcm(uint64_t a, uint64_t b);

/// Lcm over a non-empty list, or nullopt on 64-bit overflow.
std::optional<uint64_t> CheckedLcm(const std::vector<uint64_t>& values);

/// a * b, or nullopt on 64-bit overflow.
std::optional<uint64_t> CheckedMul(uint64_t a, uint64_t b);

/// True when `a` is a (positive-quotient) multiple of `b`. b must be > 0.
bool IsMultiple(uint64_t a, uint64_t b);

/// All positive divisors of n > 0, in increasing order.
std::vector<uint64_t> Divisors(uint64_t n);

/// Ceiling of a/b for b > 0.
uint64_t CeilDiv(uint64_t a, uint64_t b);

/// Floor division for possibly-negative numerators: FloorDiv(-1, 2) == -1.
int64_t FloorDiv(int64_t a, int64_t b);

/// Ceiling division for possibly-negative numerators: CeilDiv64(-1, 2) == 0.
int64_t CeilDiv64(int64_t a, int64_t b);

}  // namespace fw

#endif  // FW_COMMON_MATH_UTIL_H_
