#include "common/math_util.h"

#include "common/logging.h"

namespace fw {

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

uint64_t Gcd(const std::vector<uint64_t>& values) {
  FW_CHECK(!values.empty());
  uint64_t g = values[0];
  for (size_t i = 1; i < values.size(); ++i) g = Gcd(g, values[i]);
  return g;
}

std::optional<uint64_t> CheckedMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  uint64_t product = a * b;
  if (product / a != b) return std::nullopt;
  return product;
}

std::optional<uint64_t> CheckedLcm(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  uint64_t g = Gcd(a, b);
  return CheckedMul(a / g, b);
}

std::optional<uint64_t> CheckedLcm(const std::vector<uint64_t>& values) {
  FW_CHECK(!values.empty());
  uint64_t l = values[0];
  for (size_t i = 1; i < values.size(); ++i) {
    std::optional<uint64_t> next = CheckedLcm(l, values[i]);
    if (!next.has_value()) return std::nullopt;
    l = *next;
  }
  return l;
}

bool IsMultiple(uint64_t a, uint64_t b) {
  FW_CHECK_GT(b, 0u);
  return a % b == 0;
}

std::vector<uint64_t> Divisors(uint64_t n) {
  FW_CHECK_GT(n, 0u);
  std::vector<uint64_t> small;
  std::vector<uint64_t> large;
  for (uint64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      small.push_back(d);
      if (d != n / d) large.push_back(n / d);
    }
  }
  for (auto it = large.rbegin(); it != large.rend(); ++it) {
    small.push_back(*it);
  }
  return small;
}

uint64_t CeilDiv(uint64_t a, uint64_t b) {
  FW_CHECK_GT(b, 0u);
  return a / b + (a % b != 0 ? 1 : 0);
}

int64_t FloorDiv(int64_t a, int64_t b) {
  FW_CHECK_GT(b, 0);
  int64_t q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

int64_t CeilDiv64(int64_t a, int64_t b) { return -FloorDiv(-a, b); }

}  // namespace fw
