#include "window/window_set.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace fw {

Result<WindowSet> WindowSet::Make(std::vector<Window> windows) {
  WindowSet set;
  for (const Window& w : windows) {
    FW_RETURN_IF_ERROR(set.Add(w));
  }
  return set;
}

Status WindowSet::Add(const Window& window) {
  if (Contains(window)) {
    return Status::AlreadyExists("duplicate window " + window.ToString());
  }
  windows_.push_back(window);
  return Status::OK();
}

Status WindowSet::Remove(const Window& window) {
  auto it = std::find(windows_.begin(), windows_.end(), window);
  if (it == windows_.end()) {
    return Status::NotFound("window " + window.ToString() + " not in set");
  }
  windows_.erase(it);
  return Status::OK();
}

bool WindowSet::Contains(const Window& window) const {
  return std::find(windows_.begin(), windows_.end(), window) !=
         windows_.end();
}

std::vector<uint64_t> WindowSet::Ranges() const {
  std::vector<uint64_t> out;
  out.reserve(windows_.size());
  for (const Window& w : windows_) {
    out.push_back(static_cast<uint64_t>(w.range()));
  }
  return out;
}

std::vector<uint64_t> WindowSet::Slides() const {
  std::vector<uint64_t> out;
  out.reserve(windows_.size());
  for (const Window& w : windows_) {
    out.push_back(static_cast<uint64_t>(w.slide()));
  }
  return out;
}

bool WindowSet::AllTumbling() const {
  return std::all_of(windows_.begin(), windows_.end(),
                     [](const Window& w) { return w.IsTumbling(); });
}

std::string WindowSet::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < windows_.size(); ++i) {
    if (i > 0) os << ", ";
    os << windows_[i].ToString();
  }
  os << "}";
  return os.str();
}

namespace {

// Minimal recursive-descent scanner for the window-set spec grammar.
class SpecScanner {
 public:
  explicit SpecScanner(std::string_view text) : text_(text) {}

  void SkipSpaces() {
    while (pos_ < text_.size() &&
           (std::isspace(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == ',')) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpaces();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipSpaces();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<char> ConsumeLetter() {
    SkipSpaces();
    if (pos_ < text_.size() &&
        std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      return text_[pos_++];
    }
    return Status::InvalidArgument("expected window kind letter at offset " +
                                   std::to_string(pos_));
  }

  Result<TimeT> ConsumeNumber() {
    SkipSpaces();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected number at offset " +
                                     std::to_string(pos_));
    }
    TimeT value = 0;
    for (size_t i = start; i < pos_; ++i) {
      value = value * 10 + (text_[i] - '0');
    }
    return value;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<WindowSet> WindowSet::Parse(std::string_view spec) {
  SpecScanner scanner(spec);
  bool braced = scanner.Consume('{');
  WindowSet set;
  while (true) {
    if (braced && scanner.Consume('}')) break;
    if (scanner.AtEnd()) {
      if (braced) {
        return Status::InvalidArgument("unterminated '{' in window spec");
      }
      break;
    }
    Result<char> kind = scanner.ConsumeLetter();
    if (!kind.ok()) return kind.status();
    char k = std::toupper(static_cast<unsigned char>(*kind));
    if (k != 'T' && k != 'W') {
      return Status::InvalidArgument(std::string("unknown window kind '") +
                                     *kind + "'");
    }
    if (!scanner.Consume('(')) {
      return Status::InvalidArgument("expected '(' after window kind");
    }
    Result<TimeT> range = scanner.ConsumeNumber();
    if (!range.ok()) return range.status();
    TimeT slide = *range;
    if (k == 'W') {
      Result<TimeT> s = scanner.ConsumeNumber();
      if (!s.ok()) return s.status();
      slide = *s;
    }
    if (!scanner.Consume(')')) {
      return Status::InvalidArgument("expected ')' in window spec");
    }
    Result<Window> window = Window::Make(*range, slide);
    if (!window.ok()) return window.status();
    FW_RETURN_IF_ERROR(set.Add(*window));
  }
  if (set.empty()) {
    return Status::InvalidArgument("empty window set spec");
  }
  return set;
}

}  // namespace fw
