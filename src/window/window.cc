#include "window/window.h"

#include <sstream>

#include "common/logging.h"
#include "common/math_util.h"

namespace fw {

Window::Window(TimeT range, TimeT slide) : range_(range), slide_(slide) {
  FW_CHECK_GT(slide, 0) << "window slide must be positive";
  FW_CHECK_LE(slide, range) << "window slide must not exceed range";
}

Result<Window> Window::Make(TimeT range, TimeT slide) {
  if (slide <= 0) {
    return Status::InvalidArgument("window slide must be positive");
  }
  if (slide > range) {
    return Status::InvalidArgument("window slide must not exceed range");
  }
  return Window(range, slide);
}

std::vector<Interval> Window::FirstIntervals(int64_t count) const {
  std::vector<Interval> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t m = 0; m < count; ++m) out.push_back(IntervalAt(m));
  return out;
}

std::vector<Interval> Window::InstancesContaining(TimeT t) const {
  // [m*s, m*s + r) contains t  <=>  (t - r)/s < m <= t/s, m >= 0.
  std::vector<Interval> out;
  int64_t m_hi = FloorDiv(t, slide_);
  int64_t m_lo = FloorDiv(t - range_, slide_) + 1;
  if (m_lo < 0) m_lo = 0;
  for (int64_t m = m_lo; m <= m_hi; ++m) out.push_back(IntervalAt(m));
  return out;
}

std::string Window::ToString() const {
  std::ostringstream os;
  if (IsTumbling()) {
    os << "T(" << range_ << ")";
  } else {
    os << "W(" << range_ << ", " << slide_ << ")";
  }
  return os.str();
}

}  // namespace fw
