#include "window/coverage.h"

#include <algorithm>

#include "common/logging.h"

namespace fw {

const char* CoverageSemanticsToString(CoverageSemantics semantics) {
  switch (semantics) {
    case CoverageSemantics::kCoveredBy:
      return "covered-by";
    case CoverageSemantics::kPartitionedBy:
      return "partitioned-by";
  }
  return "unknown";
}

bool IsCoveredBy(const Window& w1, const Window& w2) {
  if (w1 == w2) return true;  // Reflexive special case (Definition 1).
  if (w1.range() <= w2.range()) return false;
  if (w1.slide() % w2.slide() != 0) return false;
  if ((w1.range() - w2.range()) % w2.slide() != 0) return false;
  return true;
}

bool IsStrictlyCoveredBy(const Window& w1, const Window& w2) {
  return !(w1 == w2) && IsCoveredBy(w1, w2);
}

bool IsPartitionedBy(const Window& w1, const Window& w2) {
  if (w1 == w2) return true;  // Reflexive, as with coverage.
  if (w1.range() <= w2.range()) return false;
  if (!w2.IsTumbling()) return false;  // Condition (3).
  if (w1.slide() % w2.slide() != 0) return false;
  if (w1.range() % w2.slide() != 0) return false;
  return true;
}

bool IsStrictlyPartitionedBy(const Window& w1, const Window& w2) {
  return !(w1 == w2) && IsPartitionedBy(w1, w2);
}

bool IsStrictlyRelated(const Window& w1, const Window& w2,
                       CoverageSemantics semantics) {
  switch (semantics) {
    case CoverageSemantics::kCoveredBy:
      return IsStrictlyCoveredBy(w1, w2);
    case CoverageSemantics::kPartitionedBy:
      return IsStrictlyPartitionedBy(w1, w2);
  }
  return false;
}

int64_t CoveringMultiplier(const Window& w1, const Window& w2) {
  FW_CHECK(IsCoveredBy(w1, w2))
      << w1.ToString() << " is not covered by " << w2.ToString();
  return 1 + (w1.range() - w2.range()) / w2.slide();
}

std::vector<Interval> CoveringSet(const Window& w1, const Interval& interval,
                                  const Window& w2) {
  FW_CHECK(IsCoveredBy(w1, w2));
  FW_CHECK_EQ(interval.length(), w1.range());
  FW_CHECK_EQ(interval.start % w1.slide(), 0);
  // W2 intervals [m*s2, m*s2 + r2) with interval.start <= m*s2 and
  // m*s2 + r2 <= interval.end. Both bounds divide exactly by Theorem 1.
  std::vector<Interval> out;
  int64_t m_lo = interval.start / w2.slide();
  int64_t m_hi = (interval.end - w2.range()) / w2.slide();
  for (int64_t m = m_lo; m <= m_hi; ++m) out.push_back(w2.IntervalAt(m));
  return out;
}

bool IntervalIsCoveredBy(const Interval& interval,
                         std::vector<Interval> pieces) {
  if (pieces.empty()) return false;
  std::sort(pieces.begin(), pieces.end(),
            [](const Interval& a, const Interval& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.end < b.end;
            });
  if (pieces.front().start != interval.start) return false;
  TimeT reach = pieces.front().start;
  for (const Interval& p : pieces) {
    if (p.start > reach) return false;  // Gap.
    if (p.start < interval.start || p.end > interval.end) return false;
    reach = std::max(reach, p.end);
  }
  return reach == interval.end;
}

bool IntervalIsPartitionedBy(const Interval& interval,
                             std::vector<Interval> pieces) {
  if (pieces.empty()) return false;
  std::sort(pieces.begin(), pieces.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  TimeT cursor = interval.start;
  for (const Interval& p : pieces) {
    if (p.start != cursor) return false;  // Gap or overlap.
    cursor = p.end;
  }
  return cursor == interval.end;
}

}  // namespace fw
