#ifndef FW_WINDOW_WINDOW_H_
#define FW_WINDOW_WINDOW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fw {

/// Integer event-time used throughout the library. Windows and events share
/// one abstract time unit (the paper uses minutes/seconds interchangeably).
using TimeT = int64_t;

/// Interval [start, end) in the interval representation of a window
/// (paper §II-A.1). Left-closed, right-open.
struct Interval {
  TimeT start = 0;
  TimeT end = 0;

  TimeT length() const { return end - start; }

  bool operator==(const Interval& other) const = default;
};

/// A time-based window W⟨r, s⟩ with range (duration) `r` and slide `s`
/// (gap between consecutive firings), 0 < s <= r. Tumbling when s == r,
/// hopping when s < r (paper §II-A).
///
/// The interval representation is W = { [m*s, m*s + r) : m >= 0 }.
class Window {
 public:
  /// Constructs W⟨r, s⟩. Fatal if the parameters are invalid; use Make()
  /// for validated construction.
  Window(TimeT range, TimeT slide);

  /// Validated construction: requires 0 < slide <= range.
  static Result<Window> Make(TimeT range, TimeT slide);

  /// Convenience for tumbling windows W⟨r, r⟩.
  static Window Tumbling(TimeT range) { return Window(range, range); }

  TimeT range() const { return range_; }
  TimeT slide() const { return slide_; }

  bool IsTumbling() const { return slide_ == range_; }
  bool IsHopping() const { return slide_ < range_; }

  /// r/s, the number of concurrently open instances in steady state. The
  /// paper assumes r is a multiple of s (§III-B.1); callers that need the
  /// integer form should verify HasIntegralRecurrence() first.
  double RangeSlideRatio() const {
    return static_cast<double>(range_) / static_cast<double>(slide_);
  }

  /// True when r is a multiple of s (the paper's standing assumption for
  /// integer recurrence counts).
  bool HasIntegralRecurrence() const { return range_ % slide_ == 0; }

  /// The m-th interval [m*s, m*s + r) of the interval representation.
  Interval IntervalAt(int64_t m) const {
    return Interval{m * slide_, m * slide_ + range_};
  }

  /// First `count` intervals of the interval representation.
  std::vector<Interval> FirstIntervals(int64_t count) const;

  /// All window instances [a, b) whose interval contains time `t`
  /// (a <= t < b), in increasing start order. There are between 1 and
  /// ceil(r/s) such instances.
  std::vector<Interval> InstancesContaining(TimeT t) const;

  /// "W(r, s)" e.g. "W(20, 10)"; tumbling windows print as "T(20)".
  std::string ToString() const;

  /// Total order for use as map keys / canonical sorting: by range, then
  /// slide. Not the coverage partial order.
  bool operator<(const Window& other) const {
    if (range_ != other.range_) return range_ < other.range_;
    return slide_ < other.slide_;
  }
  bool operator==(const Window& other) const = default;

 private:
  TimeT range_;
  TimeT slide_;
};

}  // namespace fw

#endif  // FW_WINDOW_WINDOW_H_
