#ifndef FW_WINDOW_WINDOW_SET_H_
#define FW_WINDOW_WINDOW_SET_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "window/window.h"

namespace fw {

/// A duplicate-free, insertion-ordered set of windows (paper §II-A). The
/// aggregate over a window set is the union of the per-window aggregates.
class WindowSet {
 public:
  WindowSet() = default;

  /// Builds from a list; rejects duplicates.
  static Result<WindowSet> Make(std::vector<Window> windows);

  /// Adds a window; error if already present.
  Status Add(const Window& window);

  /// Removes a window; error if absent.
  Status Remove(const Window& window);

  bool Contains(const Window& window) const;

  size_t size() const { return windows_.size(); }
  bool empty() const { return windows_.empty(); }

  const std::vector<Window>& windows() const { return windows_; }
  const Window& operator[](size_t i) const { return windows_[i]; }

  std::vector<Window>::const_iterator begin() const {
    return windows_.begin();
  }
  std::vector<Window>::const_iterator end() const { return windows_.end(); }

  /// All ranges, in insertion order.
  std::vector<uint64_t> Ranges() const;

  /// All slides, in insertion order.
  std::vector<uint64_t> Slides() const;

  /// True when every window is tumbling.
  bool AllTumbling() const;

  /// "{T(10), W(20, 5)}".
  std::string ToString() const;

  /// Parses a textual window-set spec: a comma/space separated list of
  /// "T(r)" and "W(r,s)" items, optionally wrapped in braces, e.g.
  /// "{T(20), T(30), W(40, 10)}". This is the library's tiny stand-in for
  /// the ASA `Windows(...)` SQL clause.
  static Result<WindowSet> Parse(std::string_view spec);

 private:
  std::vector<Window> windows_;
};

}  // namespace fw

#endif  // FW_WINDOW_WINDOW_SET_H_
