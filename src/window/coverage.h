#ifndef FW_WINDOW_COVERAGE_H_
#define FW_WINDOW_COVERAGE_H_

#include <cstdint>
#include <vector>

#include "window/window.h"

namespace fw {

/// The two sharing semantics of the paper. Which one applies is a property
/// of the aggregate function (§III-A): MIN/MAX tolerate overlapping
/// sub-aggregates and may use the general "covered by" relation; SUM/COUNT/
/// AVG/STDEV require disjoint partitions and must use "partitioned by".
enum class CoverageSemantics {
  kCoveredBy,
  kPartitionedBy,
};

const char* CoverageSemanticsToString(CoverageSemantics semantics);

/// Theorem 1: W1 is covered by W2 (written W1 <= W2) iff
///   (1) s1 is a multiple of s2, and
///   (2) r1 - r2 is a multiple of s2,
/// with r1 > r2 (Definition 1). Coverage is also reflexive by definition;
/// this predicate includes the W1 == W2 case.
bool IsCoveredBy(const Window& w1, const Window& w2);

/// Strict coverage: IsCoveredBy and w1 != w2 (so r1 > r2). This is the
/// relation used for WCG edges, where self-loops are meaningless.
bool IsStrictlyCoveredBy(const Window& w1, const Window& w2);

/// Theorem 4: W1 is partitioned by W2 iff
///   (1) s1 is a multiple of s2,
///   (2) r1 is a multiple of s2, and
///   (3) r2 == s2 (W2 tumbling),
/// again with the reflexive case included.
bool IsPartitionedBy(const Window& w1, const Window& w2);

/// Strict partitioning (w1 != w2).
bool IsStrictlyPartitionedBy(const Window& w1, const Window& w2);

/// Dispatches to the strict relation for `semantics`.
bool IsStrictlyRelated(const Window& w1, const Window& w2,
                       CoverageSemantics semantics);

/// Theorem 3: the covering multiplier M(W1, W2) = 1 + (r1 - r2)/s2, i.e.,
/// the number of W2 intervals in the covering set of any W1 interval.
/// Requires IsCoveredBy(w1, w2).
int64_t CoveringMultiplier(const Window& w1, const Window& w2);

/// Definition 2: the covering set of the W1 interval `interval` in W2 —
/// all W2 intervals [u, v) with interval.start <= u and v <= interval.end.
/// Requires IsCoveredBy(w1, w2) and that `interval` is an interval of w1
/// (start a non-negative multiple of w1.slide()).
std::vector<Interval> CoveringSet(const Window& w1, const Interval& interval,
                                  const Window& w2);

/// Definition 3 helper: true when `interval` equals the union of `pieces`
/// (pieces need not be disjoint). Used by tests and by the verifier.
bool IntervalIsCoveredBy(const Interval& interval,
                         std::vector<Interval> pieces);

/// Definition 4 helper: true when `pieces` are pairwise disjoint and their
/// union is exactly `interval`.
bool IntervalIsPartitionedBy(const Interval& interval,
                             std::vector<Interval> pieces);

}  // namespace fw

#endif  // FW_WINDOW_COVERAGE_H_
