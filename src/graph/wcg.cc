#include "graph/wcg.h"

#include <sstream>

#include "common/logging.h"

namespace fw {

Wcg Wcg::Build(const WindowSet& windows, CoverageSemantics semantics) {
  Wcg g(semantics);
  g.nodes_.reserve(windows.size() + 1);
  for (const Window& w : windows) {
    g.nodes_.push_back(Node{w, /*is_factor=*/false, /*is_virtual_root=*/false});
  }
  // Augmentation (§IV-A): S(1,1) represents the raw stream. Reuse a real
  // W(1,1) if the query already contains one.
  const Window unit(1, 1);
  g.root_ = -1;
  for (size_t i = 0; i < g.nodes_.size(); ++i) {
    if (g.nodes_[i].window == unit) {
      g.root_ = static_cast<int>(i);
      break;
    }
  }
  if (g.root_ < 0) {
    g.nodes_.push_back(Node{unit, /*is_factor=*/false,
                            /*is_virtual_root=*/true});
    g.root_ = static_cast<int>(g.nodes_.size()) - 1;
  }
  g.RebuildEdges();
  return g;
}

Result<int> Wcg::AddFactorWindow(const Window& window) {
  for (const Node& n : nodes_) {
    if (n.window == window) {
      return Status::AlreadyExists("window " + window.ToString() +
                                   " already in WCG");
    }
  }
  nodes_.push_back(Node{window, /*is_factor=*/true, /*is_virtual_root=*/false});
  return static_cast<int>(nodes_.size()) - 1;
}

void Wcg::RebuildEdges() {
  const int n = static_cast<int>(nodes_.size());
  providers_.assign(static_cast<size_t>(n), {});
  consumers_.assign(static_cast<size_t>(n), {});
  // All strict coverage/partition edges among non-root nodes.
  for (int i = 0; i < n; ++i) {
    if (i == root_) continue;
    for (int j = 0; j < n; ++j) {
      if (j == root_ || j == i) continue;
      // Edge j -> i when node i is strictly related to (covered by) node j.
      if (IsStrictlyRelated(nodes_[static_cast<size_t>(i)].window,
                            nodes_[static_cast<size_t>(j)].window,
                            semantics_)) {
        providers_[static_cast<size_t>(i)].push_back(j);
        consumers_[static_cast<size_t>(j)].push_back(i);
      }
    }
  }
  // Root edges: only to nodes with no other provider (§IV-A).
  for (int i = 0; i < n; ++i) {
    if (i == root_) continue;
    if (providers_[static_cast<size_t>(i)].empty()) {
      providers_[static_cast<size_t>(i)].push_back(root_);
      consumers_[static_cast<size_t>(root_)].push_back(i);
    }
  }
}

Result<int> Wcg::IndexOf(const Window& window) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].window == window) return static_cast<int>(i);
  }
  return Status::NotFound("window " + window.ToString() + " not in WCG");
}

std::string Wcg::ToDot() const {
  std::ostringstream os;
  os << "digraph wcg {\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    os << "  n" << i << " [label=\"" << nodes_[i].window.ToString() << "\"";
    if (nodes_[i].is_virtual_root) os << ", shape=diamond";
    if (nodes_[i].is_factor) os << ", style=dashed";
    os << "];\n";
  }
  for (size_t j = 0; j < consumers_.size(); ++j) {
    for (int i : consumers_[j]) {
      os << "  n" << j << " -> n" << i << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace fw
