#ifndef FW_GRAPH_WCG_H_
#define FW_GRAPH_WCG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "window/coverage.h"
#include "window/window.h"
#include "window/window_set.h"

namespace fw {

/// The Window Coverage Graph (paper §II-C) plus its augmented form
/// (§IV-A): a DAG whose vertices are windows and whose edge (W2 -> W1)
/// means "W1 is strictly covered/partitioned by W2", i.e. W1 can consume
/// sub-aggregates produced by W2.
///
/// Node roles:
///  * query windows — members of the input window set; results exposed;
///  * factor windows — auxiliary windows added by the optimizer (§IV);
///    results are computed but never exposed;
///  * the virtual root S⟨1,1⟩ — stands for the raw input stream. Edges
///    from the root point at windows with no other provider. If the query
///    itself contains W⟨1,1⟩, that node doubles as the root (the paper's
///    "do not add another one" rule) and stays exposed.
class Wcg {
 public:
  struct Node {
    Window window{1, 1};
    bool is_factor = false;
    bool is_virtual_root = false;
  };

  /// Empty graph (default semantics); useful as a placeholder before
  /// assignment from Build().
  Wcg() : semantics_(CoverageSemantics::kCoveredBy) {}

  /// Builds the augmented WCG for `windows` under `semantics`. Edge
  /// construction is O(|W|^2) pairwise tests (Theorems 1/4 are O(1) each).
  static Wcg Build(const WindowSet& windows, CoverageSemantics semantics);

  CoverageSemantics semantics() const { return semantics_; }

  size_t num_nodes() const { return nodes_.size(); }
  const Node& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Index of the root node (virtual or the real W⟨1,1⟩).
  int root_index() const { return root_; }

  /// True when node `i` is the virtual root (not a query window).
  bool IsVirtualRoot(int i) const {
    return nodes_[static_cast<size_t>(i)].is_virtual_root;
  }

  /// Providers of node `i`: nodes that strictly cover/partition it
  /// (in-neighbors), i.e. candidate upstream windows.
  const std::vector<int>& providers(int i) const {
    return providers_[static_cast<size_t>(i)];
  }

  /// Consumers of node `i`: nodes it strictly covers/partitions
  /// (out-neighbors), a.k.a. the paper's "downstream windows".
  const std::vector<int>& consumers(int i) const {
    return consumers_[static_cast<size_t>(i)];
  }

  /// Adds a factor window node. The caller must RebuildEdges() before
  /// reading adjacency again. Error if the window already exists.
  Result<int> AddFactorWindow(const Window& window);

  /// Recomputes the full edge set over the current node list, including the
  /// root-edge rule (root connects to nodes with no other provider).
  void RebuildEdges();

  /// Index of `window`, or NotFound.
  Result<int> IndexOf(const Window& window) const;

  /// Graphviz rendering, for docs and debugging.
  std::string ToDot() const;

 private:
  explicit Wcg(CoverageSemantics semantics) : semantics_(semantics) {}

  CoverageSemantics semantics_;
  std::vector<Node> nodes_;
  std::vector<std::vector<int>> providers_;
  std::vector<std::vector<int>> consumers_;
  int root_ = -1;
};

}  // namespace fw

#endif  // FW_GRAPH_WCG_H_
