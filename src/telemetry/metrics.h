#ifndef FW_TELEMETRY_METRICS_H_
#define FW_TELEMETRY_METRICS_H_

/// Always-on runtime telemetry (DESIGN.md §13): a session-owned registry
/// of sharded metric cells — relaxed-atomic counters, gauges, and
/// fixed-bucket log2 latency histograms — plus a bounded trace-event ring
/// for structural events (replans, resizes, watermark stalls, late-event
/// bursts). Designed around three constraints:
///
///  * the hot path never takes a lock or shares a cache line across
///    shards: every metric is an array of cache-line-aligned cells,
///    writers touch only their own cell with relaxed atomics, and cells
///    are summed only at snapshot time;
///  * measurement never perturbs results: telemetry reads the clock
///    (common/clock.h) and counts, but nothing observable — results,
///    watermarks, checkpoints — ever depends on a metric value, so the
///    bitwise-determinism invariant (fuzz + elasticity suites) holds with
///    telemetry on or off;
///  * `-DFW_TELEMETRY=OFF` compiles the layer out: every mutator becomes
///    an empty inline function, metric objects lose their storage, and
///    snapshots come back empty with `enabled = false` — call sites stay
///    unconditional.
///
/// Registry handles (Counter*, Gauge*, Histogram*) are resolved by name
/// once, at construction time (plan build / executor build), never per
/// event. Handles are stable for the registry's lifetime: the registry
/// owns the metric objects at fixed addresses, so a re-registered name
/// (a replan rebuilding an executor over the same session) returns the
/// same object — which is exactly what makes counters cumulative across
/// executor swaps and exact across Resize: the cells never move, so no
/// count is dropped or double-merged (tests/telemetry_test.cc pins
/// 1→4→2).

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"

#if defined(FW_TELEMETRY_DISABLED)
#define FW_TELEMETRY_ENABLED 0
#else
#define FW_TELEMETRY_ENABLED 1
#endif

namespace fw {
namespace telemetry {

/// Compile-time switch mirror, for tests and for callers that want to
/// skip snapshot plumbing entirely when the layer is compiled out.
inline constexpr bool kEnabled = FW_TELEMETRY_ENABLED != 0;

/// Cells per metric. Shard i writes cell (i & kCellMask); with more
/// shards than cells, distant shards share a cell — totals stay exact
/// (cells are summed), only false sharing could reappear past 16 workers.
inline constexpr uint32_t kCells = 16;
inline constexpr uint32_t kCellMask = kCells - 1;
static_assert((kCells & kCellMask) == 0, "kCells must be a power of two");

/// Histogram buckets: bucket 0 holds exact zeros; bucket b (1..64) holds
/// values in [2^(b-1), 2^b - 1]. Fixed log2 buckets keep Record() to a
/// bit_width plus one relaxed increment, and make bucket boundaries
/// identical across runs and hosts (no adaptive resizing to drift).
inline constexpr uint32_t kHistogramBuckets = 65;

/// Bucket index of a value (see above).
inline constexpr uint32_t BucketOf(uint64_t value) {
  return value == 0 ? 0u : static_cast<uint32_t>(std::bit_width(value));
}

/// Inclusive value range covered by a bucket.
inline constexpr uint64_t BucketLow(uint32_t bucket) {
  return bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
}
inline constexpr uint64_t BucketHigh(uint32_t bucket) {
  return bucket == 0 ? 0
         : bucket >= 64
             ? ~uint64_t{0}
             : (uint64_t{1} << bucket) - 1;
}

/// MonotonicNanos when telemetry is compiled in, 0 otherwise — the stamp
/// helper for hot-path call sites that only read the clock to feed a
/// histogram (so OFF builds skip the vDSO call too).
uint64_t NowNanosIfEnabled();

#if FW_TELEMETRY_ENABLED
namespace internal {
struct alignas(64) Cell {
  std::atomic<uint64_t> value{0};
};
}  // namespace internal
#endif

/// Monotonic event count, sharded. Writers pass their shard index; any
/// index is safe (masked). Total() is a relaxed sum — exact once the
/// writers are quiesced, a live snapshot otherwise.
class Counter {
 public:
  void Add(uint32_t cell, uint64_t delta) {
#if FW_TELEMETRY_ENABLED
    cells_[cell & kCellMask].value.fetch_add(delta,
                                             std::memory_order_relaxed);
#else
    (void)cell;
    (void)delta;
#endif
  }
  void Increment(uint32_t cell) { Add(cell, 1); }

  uint64_t Total() const {
#if FW_TELEMETRY_ENABLED
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
#else
    return 0;
#endif
  }

 private:
#if FW_TELEMETRY_ENABLED
  std::array<internal::Cell, kCells> cells_{};
#endif
};

/// Instantaneous value (one writer at a time; last write wins). Values
/// are doubles stored as bit patterns, so Set/Value are lock-free.
class Gauge {
 public:
  void Set(double value) {
#if FW_TELEMETRY_ENABLED
    bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  double Value() const {
#if FW_TELEMETRY_ENABLED
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
#else
    return 0.0;
#endif
  }

 private:
#if FW_TELEMETRY_ENABLED
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
#endif
};

/// Sharded high-water mark (e.g. per-shard ring backlog peaks). Each
/// writer raises only its own cell; Max() is the cross-cell maximum.
class MaxGauge {
 public:
  void UpdateMax(uint32_t cell, uint64_t value) {
#if FW_TELEMETRY_ENABLED
    std::atomic<uint64_t>& slot = cells_[cell & kCellMask].value;
    uint64_t seen = slot.load(std::memory_order_relaxed);
    while (value > seen &&
           !slot.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
#else
    (void)cell;
    (void)value;
#endif
  }

  uint64_t Max() const {
#if FW_TELEMETRY_ENABLED
    uint64_t max = 0;
    for (const auto& cell : cells_) {
      uint64_t v = cell.value.load(std::memory_order_relaxed);
      if (v > max) max = v;
    }
    return max;
#else
    return 0;
#endif
  }

  /// Per-cell view (shard-indexed high-water marks), sized kCells.
  std::vector<uint64_t> PerCell() const;

 private:
#if FW_TELEMETRY_ENABLED
  std::array<internal::Cell, kCells> cells_{};
#endif
};

/// Aggregated histogram state (one consistent read of a Histogram).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  /// Rank-based percentile estimate (q in [0, 1]): finds the bucket
  /// containing the q-th ranked sample and interpolates linearly inside
  /// its [low, high] value range. Exact for bucket 0 (zeros); within a
  /// factor-of-two bound otherwise — the contract of log2 buckets.
  double Percentile(double q) const;
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Per-field difference of two snapshots of the *same* histogram —
/// `later` taken after `earlier`. Histograms are monotone, so the delta
/// is the distribution of samples recorded in between; interval readers
/// (the auto-resize monitor's per-sample hand-off p99) use this instead
/// of lifetime percentiles, which would flatten any recent shift.
/// Subtraction saturates at 0 per field, so concurrent relaxed writers
/// (cells read in different orders) can never produce a wrapped count.
HistogramSnapshot Delta(const HistogramSnapshot& later,
                        const HistogramSnapshot& earlier);

/// Fixed-bucket log2 latency histogram, sharded like Counter. Record is
/// a bit_width plus two relaxed adds (bucket count and value sum).
class Histogram {
 public:
  void Record(uint32_t cell, uint64_t value) {
#if FW_TELEMETRY_ENABLED
    Shard& shard = shards_[cell & kCellMask];
    shard.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
#else
    (void)cell;
    (void)value;
#endif
  }

  HistogramSnapshot Snapshot() const;

 private:
#if FW_TELEMETRY_ENABLED
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, kCells> shards_{};
#endif
};

/// Structural runtime events recorded in the trace ring. Values are
/// serialized into artifacts — append only, never renumber.
enum class TraceKind : uint8_t {
  kReplan = 0,         // a/b = operators migrated / cold
  kResize = 1,         // a/b = shard width before / after
  kCheckpoint = 2,     // a = operators snapshotted
  kIdleRetire = 3,     // last query removed; pipeline retired
  kWatermarkStall = 4, // a = events buffered while the watermark held
  kLateBurst = 5,      // a = consecutive late events in the burst
  kDriftReplan = 6,    // a = structural change (0 recost-only, 1 crossover)
  kCrossoverDone = 7,  // a = accumulate ops retired with the old pipeline
  kRecovery = 8,       // a/b = changelog records replayed / snapshots skipped
};

const char* TraceKindName(TraceKind kind);

/// One trace event. `at_ns` is MonotonicNanos (process-relative; compare
/// within one run only), `duration_ns` the span length for span-shaped
/// events (replan/resize/checkpoint), 0 for point events.
struct TraceEvent {
  uint64_t at_ns = 0;
  TraceKind kind = TraceKind::kReplan;
  uint64_t duration_ns = 0;
  int64_t a = 0;
  int64_t b = 0;
};

/// Everything a registry knows, aggregated at one point in time. Maps
/// are ordered by name so snapshot iteration — and therefore every
/// rendered artifact — is deterministic.
struct MetricsSnapshot {
  bool enabled = kEnabled;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Oldest first; `trace_dropped` counts events evicted by the bounded
  /// ring before this snapshot.
  std::vector<TraceEvent> trace;
  uint64_t trace_dropped = 0;
};

/// The session-owned metric namespace. Registration and snapshotting
/// lock `mu_`; the returned metric objects are lock-free and live at
/// stable addresses until the registry dies (the executor handle
/// contract above). Thread-safe throughout — but by design only
/// registration, trace recording, and Snapshot ever touch the lock, and
/// none of those is on the per-event path.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve-or-create by name. Names are dotted lowercase
  /// ("executor.batch_handoff_ns"); the Prometheus renderer maps them to
  /// fw_executor_batch_handoff_ns. Re-resolving a name returns the same
  /// object (never resets it).
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  MaxGauge* GetMaxGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Appends to the bounded trace ring (capacity kTraceCapacity; oldest
  /// events are dropped and counted). Stamps TraceEvent::at_ns.
  void RecordTrace(TraceKind kind, uint64_t duration_ns = 0, int64_t a = 0,
                   int64_t b = 0);

  MetricsSnapshot Snapshot() const;

  static constexpr size_t kTraceCapacity = 256;

 private:
#if FW_TELEMETRY_ENABLED
  mutable Mutex mu_;
  /// Ordered maps: snapshot (and export) order is the name order.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      FW_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      FW_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<MaxGauge>, std::less<>> max_gauges_
      FW_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      FW_GUARDED_BY(mu_);
  /// Bounded ring: write cursor wraps; size() = min(next_, capacity).
  std::vector<TraceEvent> trace_ FW_GUARDED_BY(mu_);
  uint64_t trace_next_ FW_GUARDED_BY(mu_) = 0;
#endif
};

/// Fallback registry for executors constructed without a session (tests,
/// raw harness runs): writes land in a process-global scratch namespace
/// nobody snapshots, so instrumented code never branches on "is
/// telemetry wired". Leaked intentionally (lives for the process).
MetricsRegistry* ScratchRegistry();

}  // namespace telemetry
}  // namespace fw

#endif  // FW_TELEMETRY_METRICS_H_
