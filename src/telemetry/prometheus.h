#ifndef FW_TELEMETRY_PROMETHEUS_H_
#define FW_TELEMETRY_PROMETHEUS_H_

/// Prometheus text-exposition renderer (no server — a pure
/// snapshot→string function the future network front end can serve from
/// a /metrics handler). Renders the standard families:
///
///   * counters   → `# TYPE fw_<name> counter` + one sample
///   * gauges     → `# TYPE fw_<name> gauge` + one sample
///   * histograms → cumulative `le`-labelled buckets (log2 upper bounds,
///                  collapsed to the populated prefix) + `_sum`/`_count`
///
/// Dotted registry names map to `fw_`-prefixed metric names with every
/// non-alphanumeric character folded to `_`
/// ("executor.batch_handoff_ns" → "fw_executor_batch_handoff_ns").
/// Output order is the registry's name order — deterministic, so two
/// snapshots of the same state render byte-identically.

#include <string>

#include "telemetry/metrics.h"

namespace fw {
namespace telemetry {

/// Renders one snapshot in Prometheus text exposition format v0.0.4.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// `fw_` + name with non-[a-zA-Z0-9_] folded to '_'. Exposed for tests.
std::string PrometheusName(const std::string& name);

}  // namespace telemetry
}  // namespace fw

#endif  // FW_TELEMETRY_PROMETHEUS_H_
