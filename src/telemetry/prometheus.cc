#include "telemetry/prometheus.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace fw {
namespace telemetry {

namespace {

void AppendU64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendDouble(std::string& out, double v) {
  // %.17g round-trips doubles exactly; trailing noise is fine for an
  // exposition format that scrapers parse as float64 anyway.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "fw_";
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) || c == '_' ? c : '_';
  }
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " ";
    AppendU64(out, value);
    out += "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " ";
    AppendDouble(out, value);
    out += "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    // Highest populated bucket: everything above renders into +Inf, so
    // the 65-slot array collapses to the populated prefix.
    uint32_t top = 0;
    for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
      if (hist.buckets[b] != 0) top = b;
    }
    uint64_t cumulative = 0;
    for (uint32_t b = 0; b <= top; ++b) {
      cumulative += hist.buckets[b];
      out += prom + "_bucket{le=\"";
      AppendU64(out, BucketHigh(b));
      out += "\"} ";
      AppendU64(out, cumulative);
      out += "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} ";
    AppendU64(out, hist.count);
    out += "\n";
    out += prom + "_sum ";
    AppendU64(out, hist.sum);
    out += "\n";
    out += prom + "_count ";
    AppendU64(out, hist.count);
    out += "\n";
  }
  return out;
}

}  // namespace telemetry
}  // namespace fw
