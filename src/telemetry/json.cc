#include "telemetry/json.h"

#include <cinttypes>
#include <cstdio>

namespace fw {
namespace telemetry {

namespace {

void AppendU64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendI64(std::string& out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void AppendDouble(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

// Registry names are dotted lowercase identifiers (no quotes/escapes by
// construction), so quoting is plain wrapping.
void AppendKey(std::string& out, const std::string& name) {
  out += '"';
  out += name;
  out += "\": ";
}

}  // namespace

std::string RenderJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"enabled\": ";
  out += snapshot.enabled ? "true" : "false";

  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKey(out, name);
    AppendU64(out, value);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKey(out, name);
    AppendDouble(out, value);
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendKey(out, name);
    out += "{\"count\": ";
    AppendU64(out, hist.count);
    out += ", \"sum\": ";
    AppendU64(out, hist.sum);
    out += ", \"mean\": ";
    AppendDouble(out, hist.Mean());
    out += ", \"p50\": ";
    AppendDouble(out, hist.Percentile(0.50));
    out += ", \"p90\": ";
    AppendDouble(out, hist.Percentile(0.90));
    out += ", \"p99\": ";
    AppendDouble(out, hist.Percentile(0.99));
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
      if (hist.buckets[b] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "[";
      AppendU64(out, BucketHigh(b));
      out += ", ";
      AppendU64(out, hist.buckets[b]);
      out += "]";
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";

  out += ",\n  \"trace\": [";
  first = true;
  for (const TraceEvent& event : snapshot.trace) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"at_ns\": ";
    AppendU64(out, event.at_ns);
    out += ", \"kind\": \"";
    out += TraceKindName(event.kind);
    out += "\", \"duration_ns\": ";
    AppendU64(out, event.duration_ns);
    out += ", \"a\": ";
    AppendI64(out, event.a);
    out += ", \"b\": ";
    AppendI64(out, event.b);
    out += "}";
  }
  out += first ? "]" : "\n  ]";

  out += ",\n  \"trace_dropped\": ";
  AppendU64(out, snapshot.trace_dropped);
  out += "\n}";
  return out;
}

}  // namespace telemetry
}  // namespace fw
