#ifndef FW_TELEMETRY_JSON_H_
#define FW_TELEMETRY_JSON_H_

/// JSON renderer for metric snapshots — the bench-artifact format
/// (bench_util.h --metrics-json=PATH). One top-level object:
///
///   { "enabled": bool,
///     "counters": { name: integer, ... },
///     "gauges": { name: float, ... },
///     "histograms": { name: { "count", "sum", "mean",
///                             "p50", "p90", "p99",
///                             "buckets": [[le, n], ...] }, ... },
///     "trace": [ { "at_ns", "kind", "duration_ns", "a", "b" }, ... ],
///     "trace_dropped": integer }
///
/// Histogram buckets are emitted sparsely (populated buckets only) as
/// [inclusive-upper-bound, count] pairs. Key order follows the
/// registry's name order, so equal snapshots render byte-identically —
/// artifact diffs are meaningful.

#include <string>

#include "telemetry/metrics.h"

namespace fw {
namespace telemetry {

/// Renders one snapshot as a JSON object (no trailing newline).
std::string RenderJson(const MetricsSnapshot& snapshot);

}  // namespace telemetry
}  // namespace fw

#endif  // FW_TELEMETRY_JSON_H_
