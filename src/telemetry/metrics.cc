#include "telemetry/metrics.h"

#include "common/clock.h"

namespace fw {
namespace telemetry {

uint64_t NowNanosIfEnabled() {
#if FW_TELEMETRY_ENABLED
  return MonotonicNanos();
#else
  return 0;
#endif
}

std::vector<uint64_t> MaxGauge::PerCell() const {
  std::vector<uint64_t> out(kCells, 0);
#if FW_TELEMETRY_ENABLED
  for (uint32_t i = 0; i < kCells; ++i) {
    out[i] = cells_[i].value.load(std::memory_order_relaxed);
  }
#endif
  return out;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based: ceil(q * count), at least 1.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] < rank) {
      seen += buckets[b];
      continue;
    }
    // The target rank lands in bucket b. Interpolate linearly between
    // the bucket's bounds by the rank's position within the bucket —
    // exact for bucket 0 (all zeros), a within-bucket estimate
    // otherwise.
    double low = static_cast<double>(BucketLow(b));
    double high = static_cast<double>(BucketHigh(b));
    double into = static_cast<double>(rank - seen) /
                  static_cast<double>(buckets[b]);
    return low + (high - low) * into;
  }
  return static_cast<double>(BucketHigh(kHistogramBuckets - 1));
}

HistogramSnapshot Delta(const HistogramSnapshot& later,
                        const HistogramSnapshot& earlier) {
  HistogramSnapshot delta;
  delta.count = later.count >= earlier.count ? later.count - earlier.count : 0;
  delta.sum = later.sum >= earlier.sum ? later.sum - earlier.sum : 0;
  for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
    delta.buckets[b] = later.buckets[b] >= earlier.buckets[b]
                           ? later.buckets[b] - earlier.buckets[b]
                           : 0;
  }
  return delta;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
#if FW_TELEMETRY_ENABLED
  for (const Shard& shard : shards_) {
    for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
      uint64_t n = shard.buckets[b].load(std::memory_order_relaxed);
      snap.buckets[b] += n;
      snap.count += n;
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
#endif
  return snap;
}

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kReplan:
      return "replan";
    case TraceKind::kResize:
      return "resize";
    case TraceKind::kCheckpoint:
      return "checkpoint";
    case TraceKind::kIdleRetire:
      return "idle_retire";
    case TraceKind::kWatermarkStall:
      return "watermark_stall";
    case TraceKind::kLateBurst:
      return "late_burst";
    case TraceKind::kDriftReplan:
      return "drift_replan";
    case TraceKind::kCrossoverDone:
      return "crossover_done";
    case TraceKind::kRecovery:
      return "recovery";
  }
  return "unknown";
}

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

#if FW_TELEMETRY_ENABLED

namespace {
// Resolve-or-create in an ordered map of owned metrics. unique_ptr keeps
// the metric's address stable across rehashing-free map growth — the
// handle contract in the header.
template <typename Map>
typename Map::mapped_type::element_type* GetOrCreate(Map& map,
                                                     std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return it->second.get();
}
}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&mu_);
  return GetOrCreate(counters_, name);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&mu_);
  return GetOrCreate(gauges_, name);
}

MaxGauge* MetricsRegistry::GetMaxGauge(std::string_view name) {
  MutexLock lock(&mu_);
  return GetOrCreate(max_gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(&mu_);
  return GetOrCreate(histograms_, name);
}

void MetricsRegistry::RecordTrace(TraceKind kind, uint64_t duration_ns,
                                  int64_t a, int64_t b) {
  TraceEvent event;
  event.at_ns = MonotonicNanos();
  event.kind = kind;
  event.duration_ns = duration_ns;
  event.a = a;
  event.b = b;
  MutexLock lock(&mu_);
  if (trace_.size() < kTraceCapacity) {
    trace_.push_back(event);
  } else {
    trace_[trace_next_ % kTraceCapacity] = event;
  }
  ++trace_next_;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(&mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Total();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, gauge] : max_gauges_) {
    // Max gauges render as plain gauges at snapshot time: the sharded
    // cells are an implementation detail of lock-free raising.
    snap.gauges[name] = static_cast<double>(gauge->Max());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  if (trace_next_ <= kTraceCapacity) {
    snap.trace = trace_;
  } else {
    // Ring has wrapped: oldest event sits at the write cursor.
    snap.trace.reserve(kTraceCapacity);
    uint64_t start = trace_next_ % kTraceCapacity;
    for (size_t i = 0; i < kTraceCapacity; ++i) {
      snap.trace.push_back(trace_[(start + i) % kTraceCapacity]);
    }
    snap.trace_dropped = trace_next_ - kTraceCapacity;
  }
  return snap;
}

#else  // !FW_TELEMETRY_ENABLED

// Compiled-out registry: getters hand back shared storageless dummies
// (every mutator on them is an empty inline), traces vanish, snapshots
// come back empty with enabled=false.
namespace {
Counter g_dummy_counter;
Gauge g_dummy_gauge;
MaxGauge g_dummy_max_gauge;
Histogram g_dummy_histogram;
}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view) {
  return &g_dummy_counter;
}
Gauge* MetricsRegistry::GetGauge(std::string_view) { return &g_dummy_gauge; }
MaxGauge* MetricsRegistry::GetMaxGauge(std::string_view) {
  return &g_dummy_max_gauge;
}
Histogram* MetricsRegistry::GetHistogram(std::string_view) {
  return &g_dummy_histogram;
}
void MetricsRegistry::RecordTrace(TraceKind, uint64_t, int64_t, int64_t) {}
MetricsSnapshot MetricsRegistry::Snapshot() const { return MetricsSnapshot{}; }

#endif  // FW_TELEMETRY_ENABLED

MetricsRegistry* ScratchRegistry() {
  // Leaked: executors outlive no sessions here, but test fixtures create
  // bare ShardedExecutors whose threads may still write at static-destructor
  // time; a leaked registry can never dangle.
  static MetricsRegistry* scratch = new MetricsRegistry();
  return scratch;
}

}  // namespace telemetry
}  // namespace fw
