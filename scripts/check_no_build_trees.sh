#!/usr/bin/env bash
# CI guard: build trees must never be tracked in git (they are local
# artifacts; .gitignore covers build*/). Fails listing any offender.
set -euo pipefail
cd "$(dirname "$0")/.."
tracked=$(git ls-files -- 'build*/' || true)
if [ -n "$tracked" ]; then
  echo "ERROR: build-tree files are tracked in git:" >&2
  echo "$tracked" | head -20 >&2
  echo "(run: git rm -r --cached 'build*/')" >&2
  exit 1
fi
echo "OK: no tracked build trees"
