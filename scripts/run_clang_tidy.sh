#!/usr/bin/env bash
# Runs the project's clang-tidy gate (config: .clang-tidy) over every
# library source, using a compile_commands.json exported by CMake.
# CI's static-analysis job runs this with CLANG_TIDY=clang-tidy-18; any
# finding is an error (WarningsAsErrors: '*').
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#   build-dir  a CMake build tree configured with
#              -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
tidy="${CLANG_TIDY:-clang-tidy}"

if ! command -v "${tidy}" > /dev/null; then
  echo "run_clang_tidy: '${tidy}' not found; install clang-tidy or set" \
       "CLANG_TIDY" >&2
  exit 2
fi
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy: ${build_dir}/compile_commands.json missing —" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

mapfile -t sources < <(find "${repo_root}/src" -name '*.cc' | sort)
echo "run_clang_tidy: ${#sources[@]} sources, config $(
  "${tidy}" --version | head -n 1)"

# run-clang-tidy (parallel driver) when available, plain loop otherwise.
driver="${RUN_CLANG_TIDY:-run-clang-tidy}"
if command -v "${driver}" > /dev/null; then
  "${driver}" -clang-tidy-binary "${tidy}" -p "${build_dir}" -quiet \
      "${sources[@]}"
else
  for src in "${sources[@]}"; do
    "${tidy}" -p "${build_dir}" --quiet "${src}"
  done
fi
echo "run_clang_tidy: clean"
