#!/usr/bin/env python3
"""fw_lint: the project's determinism & concurrency-discipline linter.

The engine's north-star invariant (ROADMAP.md) is bitwise-identical
results across shard counts, disorder, churn, and live resizes. That
invariant dies quietly: one iteration over an unordered container in a
result-emit path, one wall-clock read in a replan, one locale-dependent
parse in the checkpoint codec, and outputs drift between runs or hosts
in ways no unit test reliably catches. fw_lint bans those constructs at
the source level, where they are cheap to see (DESIGN.md §12 documents
each rule's motivating invariant).

Rules (all in src/ unless noted):

  unordered-container   Iterating / serializing std::unordered_map or
                        std::unordered_set in order-sensitive paths —
                        result emit, checkpoint serialization, shard
                        merge/split. Bucket order is
                        implementation-defined, so anything ordered that
                        flows out of one is nondeterministic. Scoped to
                        the order-sensitive files (ORDER_SENSITIVE).
  raw-random            rand(), srand(), std::random_device outside
                        common/rng.h. All randomness must flow through
                        the seeded project RNG so runs replay.
  wall-clock            time(), std::chrono::system_clock, gettimeofday,
                        localtime/gmtime. Wall time differs per run and
                        host; monotonic duration measurement goes
                        through fw::MonotonicNanos (common/clock.h).
  monotonic-clock       std::chrono::steady_clock (or
                        high_resolution_clock, or clock_gettime with
                        CLOCK_MONOTONIC) outside common/clock.h. Even
                        duration-only clocks must flow through the one
                        audited shim: a single call site is what keeps
                        "no timing feeds results" checkable, and the
                        telemetry layer's compile-out guarantee depends
                        on every clock read being greppable.
  locale-dependent      setlocale, std::locale, atof/strtod/strtof,
                        sscanf/scanf: numeric parsing that honors the
                        global locale reads "3.14" as 3 under LC_ALL=de.
                        The checkpoint codec must parse identically
                        everywhere (strtoull base-10 and IEEE-754 bit
                        patterns are locale-free and stay legal).
  raw-mutex             std::mutex / std::lock_guard / std::scoped_lock /
                        std::unique_lock outside common/mutex.h. Raw
                        mutexes are invisible to Thread Safety Analysis;
                        fw::Mutex / fw::MutexLock carry the annotations.
  raw-persistence       fopen/freopen or std::*fstream outside
                        src/durability/. Durable state has exactly one
                        home: the CRC32C-framed changelog + snapshot
                        store (DESIGN.md §16). A stray ofstream writing
                        engine state bypasses framing, fsync policy, and
                        torn-tail detection, so recovery can neither
                        validate nor replay it.
  agg-descriptor        An AggregateFunction descriptor literal that
                        omits `.overlap_merge_safe` or
                        `.merge_order_sensitive`. Both are sharing-
                        correctness declarations (Theorem 6 overlap
                        safety; merge reassociation legality) — an
                        unstated default is a wrong answer waiting for
                        the first "covered by" rewrite or FlatFAT
                        combine, so every descriptor must declare them
                        explicitly.

Suppressions: append `// fw-lint: allow(<rule>)` to the flagged line, or
put it alone on the line directly above. Comments and string literals
are stripped before matching, so prose mentioning rand() is fine.

Usage:
  fw_lint.py [--root DIR] [paths...]   lint src/ (default) or paths
  fw_lint.py --selftest tests/lint     run the fixture suite: every
                                       file under bad/ must raise
                                       exactly its expected rule (the
                                       filename stem, underscores as
                                       dashes, up to an optional __n
                                       variant suffix); every file
                                       under good/ must be clean.

Exit status: 0 clean, 1 findings (or fixture failures), 2 usage error.
"""

import argparse
import pathlib
import re
import sys

# Files whose output order is observable: result emission, checkpoint
# serialization, and shard merge/split. The unordered-container rule is
# scoped to these (an unordered_map used as a pure point-lookup index
# elsewhere is fine — determinism only breaks when bucket order leaks).
ORDER_SENSITIVE = (
    "exec/sink",
    "exec/checkpoint",
    "exec/migrate",
    "exec/merge_split",
    "runtime/sharded_executor",
    "agg/aggregate",
)

SUPPRESS_RE = re.compile(r"//\s*fw-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Each rule: (name, regex over comment/string-stripped code, message,
# predicate over the repo-relative posix path).


def _in_order_sensitive(path):
    return any(key in path for key in ORDER_SENSITIVE)


def _outside(allowed):
    return lambda path: path != allowed


def _outside_dir(allowed_prefix):
    return lambda path: not path.startswith(allowed_prefix)


RULES = [
    (
        "unordered-container",
        re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b"),
        "unordered container in an order-sensitive path (result emit / "
        "checkpoint / merge-split): bucket order is implementation-defined "
        "and would leak into observable output; use std::map/std::set or "
        "sort before emitting",
        _in_order_sensitive,
    ),
    (
        "raw-random",
        re.compile(r"(?:\b(?:std::)?s?rand\s*\(|\bstd::random_device\b)"),
        "raw randomness source: all randomness must flow through the seeded "
        "RNG in common/rng.h so runs replay bit-for-bit",
        _outside("common/rng.h"),
    ),
    (
        "wall-clock",
        re.compile(
            r"(?:\bstd::chrono::system_clock\b|\b(?:std::)?time\s*\(|"
            r"\bgettimeofday\s*\(|\b(?:std::)?(?:localtime|gmtime)(?:_r)?\s*\(|"
            r"\bclock_gettime\s*\(\s*CLOCK_REALTIME)"
        ),
        "wall-clock read: wall time differs per run and host, so nothing "
        "observable may depend on it; measure durations with "
        "fw::MonotonicNanos / fw::MonotonicTimer (common/clock.h)",
        lambda path: True,
    ),
    (
        "monotonic-clock",
        re.compile(
            r"(?:\bstd::chrono::(?:steady_clock|high_resolution_clock)\b|"
            r"\bclock_gettime\s*\(\s*CLOCK_MONOTONIC)"
        ),
        "direct monotonic-clock read: all duration measurement must flow "
        "through fw::MonotonicNanos / fw::MonotonicTimer (common/clock.h) — "
        "one audited call site keeps 'no timing feeds results' checkable",
        _outside("common/clock.h"),
    ),
    (
        "locale-dependent",
        re.compile(
            r"(?:\b(?:std::)?setlocale\s*\(|\bstd::locale\b|"
            r"\b(?:std::)?(?:atof|strtod|strtof|strtold)\s*\(|"
            r"\b(?:std::)?s?scanf\s*\()"
        ),
        "locale-dependent parsing/formatting: the global locale changes "
        "what '3.14' means, so checkpoints would not round-trip across "
        "hosts; parse integers with strtoull base 10 and doubles as "
        "IEEE-754 bit patterns (agg/aggregate.h)",
        lambda path: True,
    ),
    (
        "raw-mutex",
        re.compile(
            r"(?:\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex)\b|"
            r"\bstd::(?:lock_guard|scoped_lock|unique_lock|shared_lock)\b|"
            r"#\s*include\s*<(?:mutex|shared_mutex)>)"
        ),
        "raw standard mutex: invisible to Clang Thread Safety Analysis; "
        "use fw::Mutex / fw::MutexLock (common/mutex.h), which carry the "
        "annotations",
        _outside("common/mutex.h"),
    ),
    (
        "raw-persistence",
        re.compile(
            r"(?:\bstd::(?:o|i)?fstream\b|\b(?:std::)?f(?:re)?open\s*\(|"
            r"#\s*include\s*<fstream>)"
        ),
        "raw file persistence: durable state has exactly one home — the "
        "CRC32C-framed changelog + snapshot store (src/durability/, "
        "DESIGN.md §16); an unframed write bypasses fsync policy and "
        "torn-tail detection, so recovery can neither validate nor "
        "replay it",
        _outside_dir("durability/"),
    ),
]

# agg-descriptor is structural (brace matching), handled separately from
# the line-regex rules above.
AGG_DESCRIPTOR_RULE = "agg-descriptor"
ALL_RULES = [name for name, *_ in RULES] + [AGG_DESCRIPTOR_RULE]


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure (and the fw-lint suppression comments, which the caller
    reads from the raw source). Keeps quotes' positions as spaces so
    column-free line matching stays aligned."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw_string
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                m = re.match(r'R"([^()\\ ]*)\(', text[i - 1 : i + 18]) if i and text[i - 1] == "R" else None
                if m:
                    state = "raw_string"
                    raw_delim = ")" + m.group(1) + '"'
                    out.append(" " * (len(m.group(1)) + 2))
                    i += len(m.group(1)) + 2
                else:
                    state = "string"
                    out.append(" ")
                    i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def suppressions(raw_lines):
    """Maps 1-based line number -> set of allowed rule names, honoring
    same-line and directly-preceding-line `// fw-lint: allow(rule)`."""
    allowed = {}
    for lineno, line in enumerate(raw_lines, 1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        allowed.setdefault(lineno, set()).update(rules)
        # A standalone suppression comment covers the next line too.
        if line.strip().startswith("//"):
            allowed.setdefault(lineno + 1, set()).update(rules)
    return allowed


def find_descriptor_findings(stripped, relpath):
    """agg-descriptor: every AggregateFunction descriptor literal — a
    braced initializer containing `.name =` and a data-path operation
    (`.accumulate =` or `.holistic_finalize =`) — must explicitly
    declare `.overlap_merge_safe` and `.merge_order_sensitive`."""
    findings = []
    for m in re.finditer(r"\{", stripped):
        start = m.start()
        depth = 0
        end = -1
        for i in range(start, len(stripped)):
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        if end < 0:
            continue
        body = stripped[start : end + 1]
        inner = body[1:-1]
        # Only inspect blocks that look like descriptor literals: a
        # *designated* initializer (`.field =` with nothing identifier-
        # like before the dot — `fn.name =` is a member assignment, and
        # `==` is a comparison) naming both a name and an operation.
        def designates(field):
            return re.search(r"(?<![\w)\]])\.%s\s*=(?!=)" % field, inner)

        if not designates("name"):
            continue
        if not designates("accumulate") and not designates("holistic_finalize"):
            continue
        missing = [
            field
            for field in ("overlap_merge_safe", "merge_order_sensitive")
            if not designates(field)
        ]
        if not missing:
            continue
        lineno = stripped.count("\n", 0, start) + 1
        findings.append(
            (
                lineno,
                AGG_DESCRIPTOR_RULE,
                "AggregateFunction descriptor omits explicit .%s — Theorem-6 "
                "overlap safety and merge order sensitivity are sharing-"
                "correctness declarations and must never default silently"
                % " / .".join(missing),
            )
        )
    return findings


def lint_file(path, root):
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [(0, "io", str(err))]
    relpath = path.relative_to(root).as_posix() if root in path.parents or path == root else path.as_posix()
    # Normalize away a leading src/ so rule scopes read "common/rng.h".
    scoped = re.sub(r"^src/", "", relpath)
    raw_lines = text.splitlines()
    # Lint fixtures (tests/lint/) exercise path-scoped rules from outside
    # the scoped tree; an explicit directive supplies the pretend path.
    if raw_lines:
        m = re.match(r"//\s*fw-lint-fixture-path:\s*(\S+)", raw_lines[0])
        if m:
            scoped = m.group(1)
    stripped = strip_comments_and_strings(text)
    stripped_lines = stripped.splitlines()
    allowed = suppressions(raw_lines)

    findings = []
    for name, pattern, message, applies in RULES:
        if not applies(scoped):
            continue
        for lineno, line in enumerate(stripped_lines, 1):
            if pattern.search(line):
                findings.append((lineno, name, message))
    findings.extend(find_descriptor_findings(stripped, scoped))

    return [
        (lineno, name, message)
        for lineno, name, message in findings
        if name not in allowed.get(lineno, set())
    ]


def iter_sources(paths):
    exts = {".h", ".hpp", ".hh", ".cc", ".cpp", ".cxx"}
    for p in paths:
        if p.is_file():
            yield p
        elif p.is_dir():
            yield from sorted(
                q for q in p.rglob("*") if q.is_file() and q.suffix in exts
            )


def run_lint(root, targets):
    total = 0
    for path in iter_sources(targets):
        for lineno, name, message in lint_file(path, root):
            rel = path.relative_to(root) if root in path.parents else path
            print("%s:%d: [%s] %s" % (rel, lineno, name, message))
            total += 1
    if total:
        print("fw_lint: %d finding(s)" % total)
        return 1
    return 0


def run_selftest(root, fixture_dir):
    """Every fixture under bad/ must raise exactly the rule its filename
    names (stem with underscores as dashes, optional trailing __variant);
    every fixture under good/ must produce zero findings."""
    bad_dir = fixture_dir / "bad"
    good_dir = fixture_dir / "good"
    failures = []
    checked = 0

    bad = sorted(iter_sources([bad_dir])) if bad_dir.is_dir() else []
    good = sorted(iter_sources([good_dir])) if good_dir.is_dir() else []
    if not bad or not good:
        print("fw_lint --selftest: no fixtures under %s" % fixture_dir)
        return 2

    for path in bad:
        checked += 1
        expected = path.stem.split("__")[0].replace("_", "-")
        if expected not in ALL_RULES:
            failures.append("%s: fixture names unknown rule '%s'" % (path, expected))
            continue
        hits = {name for _, name, _ in lint_file(path, root)}
        if expected not in hits:
            failures.append(
                "%s: expected rule '%s' was NOT flagged (got: %s)"
                % (path, expected, ", ".join(sorted(hits)) or "nothing")
            )
    for path in good:
        checked += 1
        findings = lint_file(path, root)
        if findings:
            failures.append(
                "%s: expected clean, got: %s"
                % (path, "; ".join("[%s] line %d" % (n, l) for l, n, _ in findings))
            )

    if failures:
        for f in failures:
            print("fw_lint --selftest FAIL: %s" % f)
        print("fw_lint --selftest: %d/%d fixtures failed" % (len(failures), checked))
        return 1
    print("fw_lint --selftest: %d fixtures OK (%d bad, %d good)" % (checked, len(bad), len(good)))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None, help="repo root (default: the script's parent's parent)")
    parser.add_argument("--selftest", metavar="FIXTURE_DIR", default=None, help="run the lint fixture suite instead of linting")
    parser.add_argument("paths", nargs="*", help="files or directories to lint (default: <root>/src)")
    opts = parser.parse_args(argv)

    root = pathlib.Path(opts.root).resolve() if opts.root else pathlib.Path(__file__).resolve().parent.parent

    if opts.selftest:
        return run_selftest(root, pathlib.Path(opts.selftest).resolve())

    targets = [pathlib.Path(p).resolve() for p in opts.paths] or [root / "src"]
    for t in targets:
        if not t.exists():
            print("fw_lint: no such path: %s" % t)
            return 2
    return run_lint(root, targets)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
