#!/usr/bin/env python3
"""perf_smoke: CI performance gates over bench_engine_micro JSON output.

Two modes, both gating on a *geometric mean* of per-benchmark
items_per_second ratios (single micro-benchmarks are noisy in shared CI
runners; individual outliers are still printed for triage):

* Telemetry overhead budget (DESIGN.md §13). Compares two result files —
  one from a default (telemetry ON) build, one from -DFW_TELEMETRY=OFF —
  and fails if ON falls more than the budget below OFF:

      perf_smoke.py --on on.json --off off.json [--budget 0.03]

* Columnar ingestion floor (DESIGN.md §14). Reads ONE result file and
  pairs every "<name>Columns..." benchmark with its scalar "<name>..."
  twin (BM_RawPushTumblingColumns vs BM_RawPushTumbling, argument
  suffixes matched exactly), failing if the columnar/scalar geomean
  speedup drops below the floor:

      perf_smoke.py --columnar results.json [--min-ratio 1.15]

* Shape check. Validates that each FILE is a benchmark result with a
  non-empty "benchmarks" array whose entries carry positive
  items_per_second values — the gate CI's bench smoke runs over
  bench_adaptive.json so a silently-empty artifact can never pass:

      perf_smoke.py --check FILE [FILE ...]

Exit status: 0 within budget/floor, 1 over it, 2 usage/parse error —
including missing, empty, or rate-less "benchmarks" entries, which fail
with a named file and reason rather than a traceback.
"""

import argparse
import json
import math
import sys


def load_items_per_second(path):
    """Benchmark name -> items_per_second. With repetitions, prefers the
    *_mean aggregate over raw iterations. Exits 2 with a named reason on
    any malformed input — a truncated or empty result file must fail the
    gate loudly, not sail through with zero rows."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print("perf_smoke: cannot read %s: %s" % (path, err))
        sys.exit(2)
    if not isinstance(doc, dict) or "benchmarks" not in doc:
        print("perf_smoke: %s has no 'benchmarks' key — not a benchmark "
              "result file" % path)
        sys.exit(2)
    benchmarks = doc["benchmarks"]
    if not isinstance(benchmarks, list) or not benchmarks:
        print("perf_smoke: %s has an empty 'benchmarks' array — the "
              "benchmark produced no results" % path)
        sys.exit(2)
    rates = {}
    aggregates = {}
    for bench in benchmarks:
        if not isinstance(bench, dict):
            continue
        name = bench.get("name", "")
        rate = bench.get("items_per_second")
        if not isinstance(rate, (int, float)) or rate <= 0:
            continue
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "mean":
                aggregates[bench.get("run_name", name)] = rate
        else:
            rates.setdefault(name, rate)
    rates.update(aggregates)
    if not rates:
        print("perf_smoke: no entry in %s carries a positive "
              "items_per_second — nothing to gate on" % path)
        sys.exit(2)
    return rates


def columnar_pairs(rates):
    """(scalar_name, columnar_name) pairs: "BM_XColumns/arg" <-> "BM_X/arg".

    The base benchmark name is everything before the first '/', so
    argument suffixes must match exactly — BM_KeyedAggregationColumns/16
    pairs with BM_KeyedAggregation/16 only.
    """
    pairs = []
    for name in sorted(rates):
        base, sep, args = name.partition("/")
        if not base.endswith("Columns"):
            continue
        scalar = base[: -len("Columns")] + sep + args
        if scalar in rates:
            pairs.append((scalar, name))
    return pairs


def gate(rows, count_label, geomean_floor, fail_message):
    """Prints a ratio table and applies the geomean floor. `rows` is a
    list of (label, denominator_rate, numerator_rate)."""
    if not rows:
        print("perf_smoke: no %s to gate on" % count_label)
        return 2
    log_sum = 0.0
    for _, denom, num in rows:
        ratio = num / denom if denom > 0 else 1.0
        log_sum += math.log(ratio)
    geomean = math.exp(log_sum / len(rows))
    print("geomean ratio over %d %s: %.4fx (floor %.2fx)"
          % (len(rows), count_label, geomean, geomean_floor))
    if geomean < geomean_floor:
        print("perf_smoke: FAIL — %s" % fail_message)
        return 1
    print("perf_smoke: OK")
    return 0


def run_overhead(opts):
    on = load_items_per_second(opts.on_path)
    off = load_items_per_second(opts.off_path)
    shared = sorted(set(on) & set(off))
    if not shared:
        print("perf_smoke: no common benchmarks between %s and %s"
              % (opts.on_path, opts.off_path))
        return 2

    print("%-44s %14s %14s %8s" % ("benchmark", "off items/s", "on items/s",
                                   "ratio"))
    rows = []
    for name in shared:
        ratio = on[name] / off[name] if off[name] > 0 else 1.0
        flag = "  <-- slow" if ratio < 1.0 - opts.budget else ""
        print("%-44s %14.0f %14.0f %7.3fx%s"
              % (name, off[name], on[name], ratio, flag))
        rows.append((name, off[name], on[name]))
    return gate(rows, "benchmarks", 1.0 - opts.budget,
                "telemetry overhead exceeds the %.0f%% budget"
                % (opts.budget * 100))


def run_columnar(opts):
    rates = load_items_per_second(opts.columnar_path)
    pairs = columnar_pairs(rates)
    if not pairs:
        print("perf_smoke: no scalar/columnar benchmark pairs in %s"
              % opts.columnar_path)
        return 2

    print("%-44s %14s %14s %8s" % ("benchmark pair", "scalar items/s",
                                   "columnar it/s", "ratio"))
    rows = []
    for scalar, columnar in pairs:
        ratio = rates[columnar] / rates[scalar] if rates[scalar] > 0 else 1.0
        flag = "  <-- slow" if ratio < opts.min_ratio else ""
        print("%-44s %14.0f %14.0f %7.3fx%s"
              % (scalar, rates[scalar], rates[columnar], ratio, flag))
        rows.append((scalar, rates[scalar], rates[columnar]))
    return gate(rows, "pairs", opts.min_ratio,
                "columnar ingestion speedup fell below the %.2fx floor"
                % opts.min_ratio)


def run_check(paths):
    """Shape gate: every file must load as a benchmark result with at
    least one positive items_per_second entry (load_items_per_second
    exits 2 otherwise). Prints the rates it found for the CI log."""
    for path in paths:
        rates = load_items_per_second(path)
        for name in sorted(rates):
            print("%-44s %14.0f items/s" % (name, rates[name]))
        print("perf_smoke: %s OK (%d benchmarks)" % (path, len(rates)))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--on", dest="on_path",
                        help="benchmark json from the telemetry-ON build")
    parser.add_argument("--off", dest="off_path",
                        help="benchmark json from the -DFW_TELEMETRY=OFF build")
    parser.add_argument("--budget", type=float, default=0.03,
                        help="allowed fractional slowdown (default 0.03)")
    parser.add_argument("--columnar", dest="columnar_path",
                        help="benchmark json holding scalar and *Columns "
                             "twins; gates columnar/scalar speedup")
    parser.add_argument("--min-ratio", type=float, default=1.15,
                        help="columnar geomean speedup floor (default 1.15)")
    parser.add_argument("--check", dest="check_paths", nargs="+",
                        metavar="FILE",
                        help="validate benchmark result files: each needs "
                             "a non-empty 'benchmarks' array with positive "
                             "items_per_second entries")
    opts = parser.parse_args(argv)

    modes = [bool(opts.check_paths), bool(opts.columnar_path),
             bool(opts.on_path or opts.off_path)]
    if sum(modes) > 1:
        print("perf_smoke: --check, --columnar, and --on/--off are "
              "mutually exclusive")
        return 2
    if opts.check_paths:
        return run_check(opts.check_paths)
    if opts.columnar_path:
        return run_columnar(opts)
    if not opts.on_path or not opts.off_path:
        print("perf_smoke: need --check FILE..., --columnar FILE, or both "
              "--on and --off")
        return 2
    return run_overhead(opts)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
