#!/usr/bin/env python3
"""perf_smoke: enforce the telemetry overhead budget (DESIGN.md §13).

Compares two `bench_engine_micro --benchmark_format=json` result files —
one from a default (telemetry ON) build, one from -DFW_TELEMETRY=OFF —
and fails if the ON build's throughput falls more than the budget below
OFF. Single micro-benchmarks are noisy in shared CI runners, so the gate
is the *geometric mean* of the per-benchmark items_per_second ratios
(ON/OFF), not any individual benchmark; individual regressions are still
printed for triage.

Usage:
  perf_smoke.py --on on.json --off off.json [--budget 0.03]

Exit status: 0 within budget, 1 over budget, 2 usage/parse error.
"""

import argparse
import json
import math
import sys


def load_items_per_second(path):
    """Benchmark name -> items_per_second. With repetitions, prefers the
    *_mean aggregate over raw iterations."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        print("perf_smoke: cannot read %s: %s" % (path, err))
        sys.exit(2)
    rates = {}
    aggregates = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "")
        rate = bench.get("items_per_second")
        if rate is None:
            continue
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "mean":
                aggregates[bench.get("run_name", name)] = rate
        else:
            rates.setdefault(name, rate)
    rates.update(aggregates)
    return rates


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--on", required=True, dest="on_path",
                        help="benchmark json from the telemetry-ON build")
    parser.add_argument("--off", required=True, dest="off_path",
                        help="benchmark json from the -DFW_TELEMETRY=OFF build")
    parser.add_argument("--budget", type=float, default=0.03,
                        help="allowed fractional slowdown (default 0.03)")
    opts = parser.parse_args(argv)

    on = load_items_per_second(opts.on_path)
    off = load_items_per_second(opts.off_path)
    shared = sorted(set(on) & set(off))
    if not shared:
        print("perf_smoke: no common benchmarks between %s and %s"
              % (opts.on_path, opts.off_path))
        return 2

    log_sum = 0.0
    print("%-44s %14s %14s %8s" % ("benchmark", "off items/s", "on items/s",
                                   "ratio"))
    for name in shared:
        ratio = on[name] / off[name] if off[name] > 0 else 1.0
        log_sum += math.log(ratio)
        flag = "  <-- slow" if ratio < 1.0 - opts.budget else ""
        print("%-44s %14.0f %14.0f %7.3fx%s"
              % (name, off[name], on[name], ratio, flag))
    geomean = math.exp(log_sum / len(shared))
    floor = 1.0 - opts.budget
    print("geomean ON/OFF ratio over %d benchmarks: %.4fx (budget floor "
          "%.2fx)" % (len(shared), geomean, floor))
    if geomean < floor:
        print("perf_smoke: FAIL — telemetry overhead exceeds the %.0f%% "
              "budget" % (opts.budget * 100))
        return 1
    print("perf_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
