// EXPLAIN-style tour of the optimizer: takes a window-set spec (and
// optionally an aggregate name) on the command line, prints the WCG, the
// min-cost WCG with and without factor windows, per-window costs, and the
// rewritten plan in Trill, Flink, and Graphviz form.
//
//   $ ./examples/optimizer_explain "{T(20), T(30), T(40)}" MIN
//   $ ./examples/optimizer_explain "{W(40,10), W(60,10)}" MAX

#include <cstdio>
#include <cstring>
#include <string>

#include "factor/optimizer.h"
#include "graph/wcg.h"
#include "plan/printer.h"
#include "session/session.h"

namespace {

fw::AggFn ParseAgg(const char* name) {
  // Any registered aggregate works — built-ins and user-defined alike.
  fw::AggFn fn = fw::FindAggregate(name);
  if (fn != nullptr) return fn;
  std::fprintf(stderr, "unknown aggregate '%s', using MIN\n", name);
  return fw::Agg("MIN");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fw;
  const char* spec = argc > 1 ? argv[1] : "{T(20), T(30), T(40)}";
  AggFn agg = argc > 2 ? ParseAgg(argv[2]) : Agg("MIN");

  Result<WindowSet> parsed = WindowSet::Parse(spec);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad window spec: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  WindowSet windows = *parsed;
  std::printf("query: %s over %s\n\n", agg->name.c_str(),
              windows.ToString().c_str());

  Result<OptimizationOutcome> outcome = OptimizeQuery(windows, agg);
  if (!outcome.ok()) {
    std::printf("optimizer: %s\n", outcome.status().ToString().c_str());
    std::printf("falling back to the original (unshared) plan:\n%s",
                ToSummary(QueryPlan::Original(windows, agg)).c_str());
    return 0;
  }

  std::printf("== window coverage graph (%s semantics) ==\n",
              CoverageSemanticsToString(outcome->semantics));
  Wcg graph = Wcg::Build(windows, outcome->semantics);
  std::printf("%s\n", graph.ToDot().c_str());

  std::printf("== Algorithm 1: min-cost WCG ==\n%s\n",
              outcome->without_factors.ToString().c_str());
  std::printf("== Algorithm 3: min-cost WCG with factor windows ==\n%s\n",
              outcome->with_factors.ToString().c_str());
  std::printf("model cost: %.0f (original) -> %.0f -> %.0f; optimizer "
              "latency %.3f ms\n\n",
              outcome->naive_cost, outcome->without_factors.total_cost,
              outcome->with_factors.total_cost,
              outcome->optimize_seconds * 1e3);

  QueryPlan plan = QueryPlan::FromMinCostWcg(outcome->with_factors, agg);
  std::printf("== rewritten plan ==\n%s\n", ToSummary(plan).c_str());
  std::printf("-- Trill expression --\n%s\n\n",
              ToTrillExpression(plan).c_str());
  std::printf("-- Flink DataStream translation --\n%s\n",
              ToFlinkExpression(plan).c_str());
  std::printf("-- Graphviz --\n%s", ToDot(plan).c_str());

  // The same query through the front door: a StreamSession owns this whole
  // pipeline and exposes the result as EXPLAIN output.
  StreamSession session;
  QueryBuilder builder = Query().Aggregate(agg->name, "v");
  builder.From("input");
  for (const Window& w : windows) builder.Over(w);
  Result<QueryId> id = session.AddQuery(builder);
  if (id.ok()) {
    std::printf("\n== StreamSession::Explain ==\n%s",
                session.Explain(*id).value().c_str());
  } else {
    std::printf("\n== StreamSession ==\nrejected: %s\n",
                id.status().ToString().c_str());
  }
  return 0;
}
