// Multi-query sharing (paper §I, Azure IoT Central): several dashboard
// queries watch the same device stream with different window sizes. The
// MultiQueryOptimizer merges the batch into one shared plan — windows of
// different queries feed each other, factor windows amortize across the
// batch — and a RoutingSink fans results back out per dashboard.
//
//   $ ./examples/multi_dashboard

#include <cstdio>

#include "exec/engine.h"
#include "harness/experiments.h"
#include "multi/multi_query.h"
#include "plan/printer.h"
#include "query/parser.h"
#include "workload/datagen.h"

int main() {
  using namespace fw;

  // Five dashboards, each its own query over the shared telemetry stream.
  const char* specs[] = {
      "SELECT MIN(temp) FROM telemetry GROUP BY WINDOWS(T(20))",
      "SELECT MIN(temp) FROM telemetry GROUP BY WINDOWS(T(40))",
      "SELECT MIN(temp) FROM telemetry GROUP BY WINDOWS(T(60), T(120))",
      "SELECT MIN(temp) FROM telemetry GROUP BY WINDOWS(T(240))",
      "SELECT MIN(temp) FROM telemetry GROUP BY WINDOWS(T(40), T(480))",
  };
  std::vector<StreamQuery> queries;
  for (const char* sql : specs) {
    queries.push_back(ParseQuery(sql).value());
    std::printf("dashboard %zu: %s\n", queries.size(), sql);
  }

  MultiQueryOptimizer::SharedPlan shared =
      MultiQueryOptimizer::Optimize(queries).value();
  std::printf("\nshared plan (%zu operators for %zu subscriptions):\n%s\n",
              shared.plan.num_operators(), shared.subscriptions.size(),
              ToSummary(shared.plan).c_str());
  std::printf("model cost: %.0f shared vs %.0f independently optimized "
              "(%.2fx saving)\n\n",
              shared.shared_cost, shared.independent_cost,
              shared.PredictedSavings());

  // Execute once, route everywhere.
  std::vector<Event> events = GenerateSyntheticStream(
      EventCountFromEnv("FW_EVENTS_1M", 480'000), 1, kSyntheticSeed);
  std::vector<CountingSink> dashboards(queries.size());
  std::vector<ResultSink*> sinks;
  for (CountingSink& sink : dashboards) sinks.push_back(&sink);
  RoutingSink router(shared, queries, sinks);
  PlanExecutor executor(shared.plan, {.num_keys = 1}, &router);
  executor.Run(events);

  uint64_t shared_ops = executor.TotalAccumulateOps();
  uint64_t independent_ops = 0;
  for (const StreamQuery& q : queries) {
    QueryPlan original = QueryPlan::Original(q.windows, q.agg);
    CountingSink sink;
    PlanExecutor solo(original, {.num_keys = 1}, &sink);
    solo.Run(events);
    independent_ops += solo.TotalAccumulateOps();
  }
  std::printf("executed %zu events once for all dashboards:\n",
              events.size());
  for (size_t i = 0; i < dashboards.size(); ++i) {
    std::printf("  dashboard %zu received %llu window results\n", i + 1,
                static_cast<unsigned long long>(dashboards[i].count()));
  }
  std::printf("accumulate ops: %llu shared vs %llu independent (%.1f%%)\n",
              static_cast<unsigned long long>(shared_ops),
              static_cast<unsigned long long>(independent_ops),
              100.0 * static_cast<double>(shared_ops) /
                  static_cast<double>(independent_ops));
  return 0;
}
