// Multi-query sharing (paper §I, Azure IoT Central): several dashboard
// queries watch the same device stream with different window sizes, and
// the population changes while the stream flows. A fw::StreamSession
// merges the live batch into one shared plan — windows of different
// queries feed each other, factor windows amortize across the batch —
// routes results back per dashboard, and re-optimizes on every
// AddQuery/RemoveQuery while migrating surviving operator state.
//
//   $ ./examples/multi_dashboard

#include <cstdio>

#include "harness/experiments.h"
#include "session/session.h"
#include "workload/datagen.h"

int main() {
  using namespace fw;

  // Five dashboards, each its own query over the shared telemetry stream.
  const char* specs[] = {
      "SELECT MIN(temp) FROM telemetry GROUP BY WINDOWS(T(20))",
      "SELECT MIN(temp) FROM telemetry GROUP BY WINDOWS(T(40))",
      "SELECT MIN(temp) FROM telemetry GROUP BY WINDOWS(T(60), T(120))",
      "SELECT MIN(temp) FROM telemetry GROUP BY WINDOWS(T(240))",
      "SELECT MIN(temp) FROM telemetry GROUP BY WINDOWS(T(40), T(480))",
  };
  // Baseline tracking stays off so the mid-stream replan latency below
  // measures the serving path, not the cost-report extras; the headline
  // saving uses the always-computed unshared-original baseline.
  StreamSession session;
  std::vector<CountingSink> dashboards(std::size(specs) + 1);
  std::vector<QueryId> ids;
  for (size_t i = 0; i < std::size(specs); ++i) {
    CountingSink* sink = &dashboards[i];
    ids.push_back(session
                      .AddQuery(specs[i],
                                [sink](const WindowResult& r) {
                                  sink->OnResult(r);
                                })
                      .value());
    std::printf("dashboard %zu: %s\n", i + 1, specs[i]);
  }

  StreamSession::SessionStats stats = session.Stats();
  std::printf("\n%s\n", session.Explain(ids[0]).value().c_str());
  std::printf("\nmodel cost: %.0f shared vs %.0f unshared originals "
              "(predicted %.2fx boost)\n\n",
              stats.shared_cost, stats.original_cost,
              stats.predicted_boost);

  // Execute once, route everywhere — and churn the population mid-stream:
  // dashboard 4 closes at half time, a new T(80) dashboard opens.
  std::vector<Event> events = GenerateSyntheticStream(
      EventCountFromEnv("FW_EVENTS_1M", 480'000), 1, kSyntheticSeed);
  const size_t half = events.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    (void)session.Push(events[i]);
  }

  (void)session.RemoveQuery(ids[3]);
  CountingSink* late_sink = &dashboards[std::size(specs)];
  (void)session
      .AddQuery(Query().Min("temp").From("telemetry").Tumbling(80),
                [late_sink](const WindowResult& r) {
                  late_sink->OnResult(r);
                })
      .value();
  stats = session.Stats();
  std::printf("mid-stream churn at t=%lld: -dashboard 4, +T(80); replan "
              "took %.3f ms, %d operators kept their state, %d cold\n\n",
              static_cast<long long>(events[half].timestamp),
              stats.last_replan_seconds * 1e3, stats.operators_migrated,
              stats.operators_cold);

  for (size_t i = half; i < events.size(); ++i) {
    (void)session.Push(events[i]);
  }
  (void)session.Finish();

  stats = session.Stats();
  std::printf("executed %llu events once for all dashboards:\n",
              static_cast<unsigned long long>(stats.events_pushed));
  for (size_t i = 0; i < dashboards.size(); ++i) {
    const char* note = i == 3 ? "  (removed mid-stream)"
                     : i == std::size(specs) ? "  (added mid-stream)" : "";
    std::printf("  dashboard %zu received %llu window results%s\n", i + 1,
                static_cast<unsigned long long>(dashboards[i].count()),
                note);
  }
  std::printf("lifetime accumulate ops: %llu across %d replans\n",
              static_cast<unsigned long long>(stats.lifetime_ops),
              stats.replans);
  return 0;
}
