// Manufacturing-sensor monitoring (the paper's "real data" scenario,
// DEBS 2012): one power sensor, AVG and STDEV telemetry at several
// horizons — algebraic aggregates that require "partitioned by" sharing —
// plus a MEDIAN query showing the holistic fallback.
//
//   $ ./examples/sensor_monitoring

#include <cstdio>

#include "harness/experiments.h"
#include "harness/runner.h"
#include "plan/printer.h"
#include "workload/datagen.h"

int main() {
  using namespace fw;

  WindowSet windows = WindowSet::Parse("{T(60), T(120), T(240), T(480)}")
                          .value();
  std::vector<Event> events = GenerateDebsLikeStream(
      EventCountFromEnv("FW_EVENTS_1M", 400'000), 1, kDebsSeed);
  std::printf("power-sensor stream: %zu readings\n\n", events.size());

  for (AggKind agg : {AggKind::kAvg, AggKind::kStdev}) {
    OptimizationOutcome outcome = OptimizeQuery(windows, agg).value();
    QueryPlan optimized =
        QueryPlan::FromMinCostWcg(outcome.with_factors, agg);
    QueryPlan original = QueryPlan::Original(windows, agg);
    Status verified =
        VerifyEquivalence(original, optimized, events, 1, 1e-9);
    RunStats naive = RunPlan(original, events, 1);
    RunStats shared = RunPlan(optimized, events, 1);
    std::printf("%s over %s (%s):\n", AggKindToString(agg),
                windows.ToString().c_str(),
                CoverageSemanticsToString(outcome.semantics));
    std::printf("  verification: %s\n", verified.ToString().c_str());
    std::printf("  model cost %.0f -> %.0f; throughput %.1f -> %.1f K/s "
                "(%.2fx)\n\n",
                outcome.naive_cost, outcome.with_factors.total_cost,
                naive.throughput / 1000.0, shared.throughput / 1000.0,
                shared.throughput / naive.throughput);
  }

  // MEDIAN is holistic: no constant-size sub-aggregate exists, so the
  // optimizer declines and the original plan runs unshared (§III-A).
  Result<OptimizationOutcome> median = OptimizeQuery(windows, AggKind::kMedian);
  std::printf("MEDIAN: optimizer says \"%s\" -> falling back to the "
              "original plan\n",
              median.status().ToString().c_str());
  QueryPlan fallback = QueryPlan::Original(windows, AggKind::kMedian);
  RunStats stats = RunPlan(fallback, events, 1);
  std::printf("  unshared MEDIAN plan: %.1f K events/s, %llu results\n",
              stats.throughput / 1000.0,
              static_cast<unsigned long long>(stats.results));
  return 0;
}
