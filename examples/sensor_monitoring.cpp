// Manufacturing-sensor monitoring (the paper's "real data" scenario,
// DEBS 2012): one power sensor, AVG and STDEV telemetry at several
// horizons — algebraic aggregates that require "partitioned by" sharing —
// plus a MEDIAN query showing the holistic fallback: StreamSession rejects
// it (no constant-size sub-aggregate exists, §III-A) and the caller runs
// the original plan through the harness instead.
//
//   $ ./examples/sensor_monitoring

#include <cstdio>

#include "harness/experiments.h"
#include "harness/runner.h"
#include "session/session.h"
#include "workload/datagen.h"

int main() {
  using namespace fw;

  WindowSet windows = WindowSet::Parse("{T(60), T(120), T(240), T(480)}")
                          .value();
  std::vector<Event> events = GenerateDebsLikeStream(
      EventCountFromEnv("FW_EVENTS_1M", 400'000), 1, kDebsSeed);
  std::printf("power-sensor stream: %zu readings\n\n", events.size());

  for (AggFn agg : {Agg("AVG"), Agg("STDEV")}) {
    StreamSession session;
    QueryBuilder query = Query().From("power").Tumbling(60).Tumbling(120)
                             .Tumbling(240).Tumbling(480);
    query = agg == Agg("AVG") ? query.Avg("mf01") : query.Stdev("mf01");
    CountingSink sink;
    (void)session
        .AddQuery(query, [&sink](const WindowResult& r) { sink.OnResult(r); })
        .value();

    // The session's plan must agree with the unshared original plan.
    QueryPlan original = QueryPlan::Original(windows, agg);
    Status verified = VerifyEquivalence(original, *session.shared_plan(),
                                        events, 1, 1e-9);
    (void)session.PushBatch(events);
    (void)session.Finish();

    RunStats naive = RunPlan(original, events, 1);
    StreamSession::SessionStats stats = session.Stats();
    std::printf("%s over %s:\n", agg->name.c_str(),
                windows.ToString().c_str());
    std::printf("  verification: %s\n", verified.ToString().c_str());
    std::printf("  %llu results; ops %llu -> %llu (predicted boost "
                "%.2fx)\n\n",
                static_cast<unsigned long long>(sink.count()),
                static_cast<unsigned long long>(naive.ops),
                static_cast<unsigned long long>(stats.lifetime_ops),
                stats.predicted_boost);
  }

  // MEDIAN is holistic: no constant-size sub-aggregate exists, so the
  // session declines and the original plan runs unshared (§III-A).
  StreamSession session;
  Result<QueryId> median = session.AddQuery(
      Query().Median("mf01").From("power").Tumbling(60).Tumbling(120));
  std::printf("MEDIAN: session says \"%s\" -> falling back to the "
              "original plan\n",
              median.status().ToString().c_str());
  WindowSet median_windows = WindowSet::Parse("{T(60), T(120)}").value();
  QueryPlan fallback = QueryPlan::Original(median_windows, Agg("MEDIAN"));
  RunStats stats = RunPlan(fallback, events, 1);
  std::printf("  unshared MEDIAN plan: %.1f K events/s, %llu results\n",
              stats.throughput / 1000.0,
              static_cast<unsigned long long>(stats.results));
  return 0;
}
