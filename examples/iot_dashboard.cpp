// IoT dashboard scenario (paper §I): multiple downstream applications
// watch the same device fleet at different granularities — a classic
// correlated-window workload. Demonstrates per-device grouping and hopping
// windows under "covered by" semantics through fw::StreamSession, with the
// harness verifying that the session's shared plan agrees with the
// unshared original plan.
//
//   $ ./examples/iot_dashboard

#include <cstdio>

#include "harness/experiments.h"
#include "harness/runner.h"
#include "session/session.h"
#include "workload/datagen.h"

int main() {
  using namespace fw;

  // Five dashboards over the same fleet: sliding MAX temperature with
  // increasing spans, all sliding every 10 minutes, one query per span.
  constexpr TimeT kSpans[] = {20, 40, 60, 80, 120};
  const uint32_t kDevices = 4;
  StreamSession session({.num_keys = kDevices});
  QueryId first = 0;
  for (TimeT r : kSpans) {
    QueryId id = session
                     .AddQuery(Query()
                                   .Max("temperature")
                                   .From("fleet")
                                   .PerKey("device_id")
                                   .Hopping(r, 10))
                     .value();
    if (r == 20) first = id;
  }
  std::printf("five MAX dashboards per device (%u devices):\n\n%s\n",
              kDevices, session.Explain(first).value().c_str());

  // Simulated fleet telemetry.
  std::vector<Event> events = GenerateDebsLikeStream(
      EventCountFromEnv("FW_EVENTS_1M", 400'000), kDevices, kDebsSeed);

  // Verify the session's shared plan agrees with the unshared plan (MAX
  // allows the general "covered by" sharing, Theorem 6), then stream.
  WindowSet windows;
  for (TimeT r : kSpans) {
    (void)windows.Add(Window(r, 10));
  }
  QueryPlan original = QueryPlan::Original(windows, Agg("MAX"));
  Status verified = VerifyEquivalence(original, *session.shared_plan(),
                                      events, kDevices);
  std::printf("result equivalence: %s\n\n", verified.ToString().c_str());

  (void)session.PushBatch(events);
  (void)session.Finish();

  RunStats naive = RunPlan(original, events, kDevices);
  StreamSession::SessionStats stats = session.Stats();
  std::printf("original : %llu accumulate ops\n",
              static_cast<unsigned long long>(naive.ops));
  std::printf("session  : %llu accumulate ops (%.1f%%), predicted boost "
              "%.2fx\n",
              static_cast<unsigned long long>(stats.lifetime_ops),
              100.0 * static_cast<double>(stats.lifetime_ops) /
                  static_cast<double>(naive.ops),
              stats.predicted_boost);
  return verified.ok() ? 0 : 1;
}
