// IoT dashboard scenario (paper §I): multiple downstream applications
// watch the same device fleet at different granularities — a classic
// correlated-window workload. Demonstrates per-device grouping, hopping
// windows under "covered by" semantics, and result verification.
//
//   $ ./examples/iot_dashboard

#include <cstdio>

#include "harness/experiments.h"
#include "harness/runner.h"
#include "plan/printer.h"
#include "workload/datagen.h"

int main() {
  using namespace fw;

  // Five dashboards over the same fleet: sliding MAX temperature with
  // increasing spans, all sliding every 10 minutes.
  WindowSet windows;
  for (TimeT r : {20, 40, 60, 80, 120}) {
    (void)windows.Add(Window(r, 10));
  }
  const AggKind agg = AggKind::kMax;
  const uint32_t kDevices = 4;
  std::printf("dashboards: %s %s per device (%u devices)\n\n",
              AggKindToString(agg), windows.ToString().c_str(), kDevices);

  // MAX allows the general "covered by" sharing (Theorem 6).
  OptimizationOutcome outcome = OptimizeQuery(windows, agg).value();
  QueryPlan optimized = QueryPlan::FromMinCostWcg(outcome.with_factors, agg);
  std::printf("optimized plan (%s semantics):\n%s\n",
              CoverageSemanticsToString(outcome.semantics),
              ToSummary(optimized).c_str());

  // Simulated fleet telemetry.
  std::vector<Event> events = GenerateDebsLikeStream(
      EventCountFromEnv("FW_EVENTS_1M", 400'000), kDevices, kDebsSeed);

  // Verify the optimized plan agrees with the unshared plan, then race
  // them.
  QueryPlan original = QueryPlan::Original(windows, agg);
  Status verified =
      VerifyEquivalence(original, optimized, events, kDevices);
  std::printf("result equivalence: %s\n\n", verified.ToString().c_str());

  RunStats naive = RunPlan(original, events, kDevices);
  RunStats shared = RunPlan(optimized, events, kDevices);
  std::printf("original : %8.1f K events/s, %llu window results\n",
              naive.throughput / 1000.0,
              static_cast<unsigned long long>(naive.results));
  std::printf("optimized: %8.1f K events/s, %llu window results (%.2fx)\n",
              shared.throughput / 1000.0,
              static_cast<unsigned long long>(shared.results),
              shared.throughput / naive.throughput);
  std::printf("\naccumulate ops: %llu -> %llu (%.1f%% of original)\n",
              static_cast<unsigned long long>(naive.ops),
              static_cast<unsigned long long>(shared.ops),
              100.0 * static_cast<double>(shared.ops) /
                  static_cast<double>(naive.ops));
  return verified.ok() ? 0 : 1;
}
