// Quickstart: the paper's Example 1 — MIN(temperature) over 20/30/40-
// minute tumbling windows of a device telemetry stream — through the
// library's front door, fw::StreamSession. The session parses/builds the
// query, runs the cost-based optimizer (Algorithms 1 and 3), executes the
// rewritten shared plan, and routes results back, all behind one object.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "harness/experiments.h"
#include "session/session.h"
#include "workload/datagen.h"

int main() {
  using namespace fw;

  // 1. Open a session and declare the query with the fluent builder. The
  //    SQL front end works too:
  //      session.AddQuery("SELECT MIN(temperature) FROM input GROUP BY "
  //                       "WINDOWS(T(20), T(30), T(40))", ...)
  StreamSession session;
  CountingSink dashboard;
  QueryId id = session
                   .AddQuery(Query()
                                 .Min("temperature")
                                 .From("input")
                                 .Tumbling(20)
                                 .Tumbling(30)
                                 .Tumbling(40),
                             [&dashboard](const WindowResult& r) {
                               dashboard.OnResult(r);
                             })
                   .value();

  // 2. Inspect what the optimizer built (Figure 2(c)).
  std::printf("%s\n", session.Explain(id).value().c_str());

  // 3. Stream synthetic telemetry through the shared plan.
  std::vector<Event> events = GenerateSyntheticStream(
      EventCountFromEnv("FW_EVENTS_1M", 500'000), 1, kSyntheticSeed);
  if (!session.PushBatch(events).ok() || !session.Finish().ok()) {
    std::fprintf(stderr, "push failed\n");
    return 1;
  }

  // 4. Report what happened.
  StreamSession::SessionStats stats = session.Stats();
  std::printf("\nprocessed %llu events for %llu window results\n",
              static_cast<unsigned long long>(stats.events_pushed),
              static_cast<unsigned long long>(dashboard.count()));
  std::printf("model cost: %.0f rewritten vs %.0f original "
              "(predicted %.2fx speedup)\n",
              stats.shared_cost, stats.original_cost,
              stats.predicted_boost);
  std::printf("engine accumulate/merge ops: %llu\n",
              static_cast<unsigned long long>(stats.lifetime_ops));
  return 0;
}
