// Quickstart: optimize and execute Example 1 of the paper — a MIN
// aggregate over 20/30/40-minute tumbling windows on a device telemetry
// stream — and compare the three plans.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "harness/experiments.h"
#include "plan/printer.h"
#include "workload/datagen.h"

int main() {
  using namespace fw;

  // 1. Declare the query: MIN(temperature) per device over three windows.
  //    (This is the ASA query of Figure 1(a).)
  WindowSet windows = WindowSet::Parse("{T(20), T(30), T(40)}").value();
  AggKind agg = AggKind::kMin;
  std::printf("query: %s over windows %s\n\n", AggKindToString(agg),
              windows.ToString().c_str());

  // 2. Run the cost-based optimizer (Algorithms 1 and 3).
  OptimizationOutcome outcome = OptimizeQuery(windows, agg).value();
  std::printf("semantics selected: %s\n",
              CoverageSemanticsToString(outcome.semantics));
  std::printf("model cost: original %.0f, rewritten %.0f, with factor "
              "windows %.0f\n\n",
              outcome.naive_cost, outcome.without_factors.total_cost,
              outcome.with_factors.total_cost);

  // 3. Inspect the rewritten plan (Figure 2(c)).
  QueryPlan plan = QueryPlan::FromMinCostWcg(outcome.with_factors, agg);
  std::printf("rewritten plan:\n%s\n", ToSummary(plan).c_str());
  std::printf("as a Trill expression:\n%s\n\n",
              ToTrillExpression(plan).c_str());

  // 4. Execute all three plans on a synthetic telemetry stream and
  //    compare throughput.
  std::vector<Event> events = GenerateSyntheticStream(
      EventCountFromEnv("FW_EVENTS_1M", 500'000), 1, kSyntheticSeed);
  QuerySetup setup{windows, agg, outcome.semantics};
  ComparisonResult result = CompareSetups(setup, events, 1);
  std::printf("throughput on %zu events (single core):\n", events.size());
  std::printf("  original plan     : %8.1f K events/s (%llu ops)\n",
              result.original.throughput / 1000.0,
              static_cast<unsigned long long>(result.original.ops));
  std::printf("  rewritten, no FW  : %8.1f K events/s (%llu ops) -> %.2fx\n",
              result.without_fw.throughput / 1000.0,
              static_cast<unsigned long long>(result.without_fw.ops),
              result.BoostWithoutFw());
  std::printf("  rewritten, with FW: %8.1f K events/s (%llu ops) -> %.2fx\n",
              result.with_fw.throughput / 1000.0,
              static_cast<unsigned long long>(result.with_fw.ops),
              result.BoostWithFw());
  return 0;
}
