// Declarative front end: hand an ASA-style SQL query to a StreamSession,
// which parses it, runs it through the cost-based optimizer, and executes
// the rewritten plan. Pass a query as the first argument or use the
// built-in Example-1 query.
//
//   $ ./examples/sql_query
//   $ ./examples/sql_query "SELECT AVG(load) FROM metrics GROUP BY host, WINDOWS(HOPPINGWINDOW(60, 10))"

#include <cstdio>

#include "harness/experiments.h"
#include "harness/runner.h"
#include "query/parser.h"
#include "session/session.h"
#include "workload/datagen.h"

int main(int argc, char** argv) {
  using namespace fw;
  const char* sql = argc > 1 ? argv[1]
                             : "SELECT MIN(temperature) FROM input "
                               "GROUP BY device_id, WINDOWS("
                               "TUMBLINGWINDOW(20), TUMBLINGWINDOW(30), "
                               "TUMBLINGWINDOW(40))";
  std::printf("query:\n  %s\n\n", sql);

  // Parse first: the session's key space depends on whether the query
  // groups by a key column.
  Result<StreamQuery> parsed = ParseQuery(sql);
  if (!parsed.ok()) {
    std::fprintf(stderr, "rejected: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const uint32_t num_keys = parsed->per_key ? 4 : 1;

  StreamSession session({.num_keys = num_keys});
  CountingSink sink;
  Result<QueryId> id = session.AddQuery(
      *parsed, [&sink](const WindowResult& r) { sink.OnResult(r); });
  if (!id.ok() && id.status().code() == StatusCode::kUnimplemented) {
    // Holistic aggregate: no shared session, so run the original plan
    // unshared (the paper's fallback).
    std::printf("%s\n-> executing the original plan unshared\n\n",
                id.status().ToString().c_str());
    std::vector<Event> events = GenerateSyntheticStream(
        EventCountFromEnv("FW_EVENTS_1M", 400'000), num_keys,
        kSyntheticSeed);
    QueryPlan original = QueryPlan::Original(parsed->windows, parsed->agg);
    RunStats stats = RunPlan(original, events, num_keys);
    std::printf("processed %zu events, delivered %llu window results "
                "(%.1f K events/s)\n",
                events.size(),
                static_cast<unsigned long long>(stats.results),
                stats.throughput / 1000.0);
    return 0;
  }
  if (!id.ok()) {
    std::fprintf(stderr, "rejected: %s\n", id.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n\n", session.Explain(*id).value().c_str());

  std::vector<Event> events = GenerateSyntheticStream(
      EventCountFromEnv("FW_EVENTS_1M", 400'000), num_keys, kSyntheticSeed);
  if (!session.PushBatch(events).ok() || !session.Finish().ok()) {
    std::fprintf(stderr, "push failed\n");
    return 1;
  }

  StreamSession::SessionStats stats = session.Stats();
  std::printf("processed %llu events, delivered %llu window results\n",
              static_cast<unsigned long long>(stats.events_pushed),
              static_cast<unsigned long long>(sink.count()));
  std::printf("model cost %.0f original -> %.0f shared (predicted "
              "speedup %.2fx); replan latency %.3f ms\n",
              stats.original_cost, stats.shared_cost, stats.predicted_boost,
              stats.last_replan_seconds * 1e3);
  return 0;
}
