// Declarative front end: compile an ASA-style SQL query through the
// cost-based optimizer and execute it. Pass a query as the first argument
// or use the built-in Example-1 query.
//
//   $ ./examples/sql_query
//   $ ./examples/sql_query "SELECT AVG(load) FROM metrics GROUP BY host, \
//        WINDOWS(HOPPINGWINDOW(60, 10), HOPPINGWINDOW(120, 10))"

#include <cstdio>

#include "harness/experiments.h"
#include "harness/runner.h"
#include "plan/printer.h"
#include "query/compile.h"
#include "workload/datagen.h"

int main(int argc, char** argv) {
  using namespace fw;
  const char* sql = argc > 1 ? argv[1]
                             : "SELECT MIN(temperature) FROM input "
                               "GROUP BY device_id, WINDOWS("
                               "TUMBLINGWINDOW(20), TUMBLINGWINDOW(30), "
                               "TUMBLINGWINDOW(40))";
  std::printf("query:\n  %s\n\n", sql);

  Result<CompiledQuery> compiled = CompileQuery(sql);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("canonical form:\n  %s\n\n", compiled->query.ToSql().c_str());
  if (compiled->shared) {
    std::printf("optimized under %s semantics in %.3f ms; model cost "
                "%.0f -> %.0f (predicted speedup %.2fx)\n\n",
                CoverageSemanticsToString(compiled->semantics),
                compiled->optimize_seconds * 1e3, compiled->original_cost,
                compiled->plan_cost, compiled->PredictedSpeedup());
  } else {
    std::printf("holistic aggregate: executing the original plan\n\n");
  }
  std::printf("plan:\n%s\n", ToSummary(compiled->plan).c_str());

  const uint32_t num_keys = compiled->query.per_key ? 4 : 1;
  std::vector<Event> events = GenerateSyntheticStream(
      EventCountFromEnv("FW_EVENTS_1M", 400'000), num_keys, kSyntheticSeed);
  RunStats naive = RunPlan(compiled->original_plan, events, num_keys);
  RunStats best = RunPlan(compiled->plan, events, num_keys);
  std::printf("throughput: original %.1f K/s, optimized %.1f K/s "
              "(%.2fx measured, %.2fx predicted)\n",
              naive.throughput / 1000.0, best.throughput / 1000.0,
              best.throughput / naive.throughput,
              compiled->PredictedSpeedup());
  return 0;
}
